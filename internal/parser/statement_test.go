package parser

import (
	"testing"

	"sma/internal/core"
	"sma/internal/tuple"
)

// TestParseStatementDispatch: every statement kind routes to its node type.
func TestParseStatementDispatch(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"select count(*) from T", "select"},
		{"define sma m select min(A) from T", "define"},
		{"drop sma m on T", "drop"},
		{"create table T (A date, B char(3), C float64)", "create"},
		{"delete from T where A <= 5", "delete"},
	}
	for _, c := range cases {
		st, err := ParseStatement(c.src)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		var got string
		switch st.(type) {
		case *SelectStmt:
			got = "select"
		case *DefineSMAStmt:
			got = "define"
		case *DropSMAStmt:
			got = "drop"
		case *CreateTableStmt:
			got = "create"
		case *DeleteStmt:
			got = "delete"
		}
		if got != c.want {
			t.Errorf("%q parsed as %T", c.src, st)
		}
	}
}

// TestParseCreateTable: column types and char lengths round-trip.
func TestParseCreateTable(t *testing.T) {
	st, err := ParseStatement("create table SALES (SALE_DATE date, REGION char(2), AMOUNT float64, UNITS int64, STORE int32)")
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(*CreateTableStmt)
	if ct.Table != "SALES" {
		t.Errorf("table = %q", ct.Table)
	}
	want := []tuple.Column{
		{Name: "SALE_DATE", Type: tuple.TDate},
		{Name: "REGION", Type: tuple.TChar, Len: 2},
		{Name: "AMOUNT", Type: tuple.TFloat64},
		{Name: "UNITS", Type: tuple.TInt64},
		{Name: "STORE", Type: tuple.TInt32},
	}
	if len(ct.Columns) != len(want) {
		t.Fatalf("%d columns", len(ct.Columns))
	}
	for i, c := range ct.Columns {
		if c.Name != want[i].Name || c.Type != want[i].Type || c.Len != want[i].Len {
			t.Errorf("col %d = %+v, want %+v", i, c, want[i])
		}
	}
}

// TestParseDropSMA: name is normalized to lower case like SMA definitions.
func TestParseDropSMA(t *testing.T) {
	st, err := ParseStatement("drop sma MIN on LINEITEM")
	if err != nil {
		t.Fatal(err)
	}
	ds := st.(*DropSMAStmt)
	if ds.Name != "min" || ds.Table != "LINEITEM" {
		t.Errorf("drop = %+v", ds)
	}
}

// TestParseDelete: optional WHERE clause.
func TestParseDelete(t *testing.T) {
	st, err := ParseStatement("delete from SALES where SALE_DATE <= date '2020-06-30'")
	if err != nil {
		t.Fatal(err)
	}
	de := st.(*DeleteStmt)
	if de.Table != "SALES" || de.Where == nil {
		t.Errorf("delete = %+v", de)
	}
	st, err = ParseStatement("delete from SALES")
	if err != nil {
		t.Fatal(err)
	}
	if st.(*DeleteStmt).Where != nil {
		t.Errorf("bare delete should have nil predicate")
	}
}

// TestParseDefineSMAStatement: the define path yields the same Def as
// ParseSMADef.
func TestParseDefineSMAStatement(t *testing.T) {
	st, err := ParseStatement("define sma cnt select count(*) from SALES group by REGION")
	if err != nil {
		t.Fatal(err)
	}
	def := st.(*DefineSMAStmt).Def
	if def.Name != "cnt" || def.Agg != core.Count || len(def.GroupBy) != 1 {
		t.Errorf("def = %+v", def)
	}
}

// TestParseProjection: bare-column and star selects parse as projections.
func TestParseProjection(t *testing.T) {
	q, err := ParseQuery("select A, B from T where A <= 5 limit 10")
	if err != nil {
		t.Fatal(err)
	}
	if !q.IsProjection() || len(q.Items) != 2 || q.Limit != 10 {
		t.Errorf("projection = %+v", q)
	}
	q, err = ParseQuery("select * from T")
	if err != nil {
		t.Fatal(err)
	}
	if !q.Star || !q.IsProjection() {
		t.Errorf("star = %+v", q)
	}
	// An aggregation query is not a projection.
	q, err = ParseQuery("select count(*) from T")
	if err != nil {
		t.Fatal(err)
	}
	if q.IsProjection() {
		t.Errorf("aggregate query classified as projection")
	}
}

// TestParseStatementErrors: malformed statements are rejected.
func TestParseStatementErrors(t *testing.T) {
	cases := []string{
		"",
		"insert into T values (1)",
		"drop sma m",                   // missing ON table
		"create table T ()",            // no columns
		"create table T (A varchar)",   // unknown type
		"create table T (A char)",      // char without length
		"create table T (A char(0))",   // bad length
		"delete T",                     // missing FROM
		"delete from T where A ~ 1",    // bad operator
		"drop sma m on T junk",         // trailing tokens
		"create table T (A date) junk", // trailing tokens
	}
	for _, src := range cases {
		if _, err := ParseStatement(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}
