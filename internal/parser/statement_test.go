package parser

import (
	"testing"

	"sma/internal/core"
	"sma/internal/tuple"
)

// TestParseStatementDispatch: every statement kind routes to its node type.
func TestParseStatementDispatch(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"select count(*) from T", "select"},
		{"define sma m select min(A) from T", "define"},
		{"drop sma m on T", "drop"},
		{"create table T (A date, B char(3), C float64)", "create"},
		{"delete from T where A <= 5", "delete"},
		{"insert into T values (1, 'x')", "insert"},
		{"update T set A = 1", "update"},
	}
	for _, c := range cases {
		st, err := ParseStatement(c.src)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		var got string
		switch st.(type) {
		case *SelectStmt:
			got = "select"
		case *DefineSMAStmt:
			got = "define"
		case *DropSMAStmt:
			got = "drop"
		case *CreateTableStmt:
			got = "create"
		case *DeleteStmt:
			got = "delete"
		case *InsertStmt:
			got = "insert"
		case *UpdateStmt:
			got = "update"
		}
		if got != c.want {
			t.Errorf("%q parsed as %T", c.src, st)
		}
	}
}

// TestParseCreateTable: column types and char lengths round-trip.
func TestParseCreateTable(t *testing.T) {
	st, err := ParseStatement("create table SALES (SALE_DATE date, REGION char(2), AMOUNT float64, UNITS int64, STORE int32)")
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(*CreateTableStmt)
	if ct.Table != "SALES" {
		t.Errorf("table = %q", ct.Table)
	}
	want := []tuple.Column{
		{Name: "SALE_DATE", Type: tuple.TDate},
		{Name: "REGION", Type: tuple.TChar, Len: 2},
		{Name: "AMOUNT", Type: tuple.TFloat64},
		{Name: "UNITS", Type: tuple.TInt64},
		{Name: "STORE", Type: tuple.TInt32},
	}
	if len(ct.Columns) != len(want) {
		t.Fatalf("%d columns", len(ct.Columns))
	}
	for i, c := range ct.Columns {
		if c.Name != want[i].Name || c.Type != want[i].Type || c.Len != want[i].Len {
			t.Errorf("col %d = %+v, want %+v", i, c, want[i])
		}
	}
}

// TestParseDropSMA: name is normalized to lower case like SMA definitions.
func TestParseDropSMA(t *testing.T) {
	st, err := ParseStatement("drop sma MIN on LINEITEM")
	if err != nil {
		t.Fatal(err)
	}
	ds := st.(*DropSMAStmt)
	if ds.Name != "min" || ds.Table != "LINEITEM" {
		t.Errorf("drop = %+v", ds)
	}
}

// TestParseDelete: optional WHERE clause.
func TestParseDelete(t *testing.T) {
	st, err := ParseStatement("delete from SALES where SALE_DATE <= date '2020-06-30'")
	if err != nil {
		t.Fatal(err)
	}
	de := st.(*DeleteStmt)
	if de.Table != "SALES" || de.Where == nil {
		t.Errorf("delete = %+v", de)
	}
	st, err = ParseStatement("delete from SALES")
	if err != nil {
		t.Fatal(err)
	}
	if st.(*DeleteStmt).Where != nil {
		t.Errorf("bare delete should have nil predicate")
	}
}

// TestParseDefineSMAStatement: the define path yields the same Def as
// ParseSMADef.
func TestParseDefineSMAStatement(t *testing.T) {
	st, err := ParseStatement("define sma cnt select count(*) from SALES group by REGION")
	if err != nil {
		t.Fatal(err)
	}
	def := st.(*DefineSMAStmt).Def
	if def.Name != "cnt" || def.Agg != core.Count || len(def.GroupBy) != 1 {
		t.Errorf("def = %+v", def)
	}
}

// TestParseProjection: bare-column and star selects parse as projections.
func TestParseProjection(t *testing.T) {
	q, err := ParseQuery("select A, B from T where A <= 5 limit 10")
	if err != nil {
		t.Fatal(err)
	}
	if !q.IsProjection() || len(q.Items) != 2 || q.Limit != 10 {
		t.Errorf("projection = %+v", q)
	}
	q, err = ParseQuery("select * from T")
	if err != nil {
		t.Fatal(err)
	}
	if !q.Star || !q.IsProjection() {
		t.Errorf("star = %+v", q)
	}
	// An aggregation query is not a projection.
	q, err = ParseQuery("select count(*) from T")
	if err != nil {
		t.Fatal(err)
	}
	if q.IsProjection() {
		t.Errorf("aggregate query classified as projection")
	}
}

// TestParseInsert: multi-row VALUES, optional column list, every literal
// form.
func TestParseInsert(t *testing.T) {
	st, err := ParseStatement(
		"insert into SALES values (date '2020-01-02', 'N', 129.95, -3), ('2020-01-03', 'S', 0, 4)")
	if err != nil {
		t.Fatal(err)
	}
	in := st.(*InsertStmt)
	if in.Table != "SALES" || len(in.Columns) != 0 || len(in.Rows) != 2 {
		t.Fatalf("insert = %+v", in)
	}
	r0 := in.Rows[0]
	if r0[0].IsStr || r0[0].Num != float64(tuple.MustParseDate("2020-01-02")) {
		t.Errorf("date literal = %+v", r0[0])
	}
	if !r0[1].IsStr || r0[1].Str != "N" {
		t.Errorf("string literal = %+v", r0[1])
	}
	if r0[2].Num != 129.95 || r0[3].Num != -3 {
		t.Errorf("numeric literals = %+v %+v", r0[2], r0[3])
	}
	if !in.Rows[1][0].IsStr || in.Rows[1][0].Str != "2020-01-03" {
		t.Errorf("date-as-string literal = %+v", in.Rows[1][0])
	}

	st, err = ParseStatement("insert into T (B, A) values (1, 2)")
	if err != nil {
		t.Fatal(err)
	}
	in = st.(*InsertStmt)
	if len(in.Columns) != 2 || in.Columns[0] != "B" || in.Columns[1] != "A" {
		t.Errorf("columns = %v", in.Columns)
	}
}

// TestParseUpdate: expression and string right-hand sides, optional WHERE.
func TestParseUpdate(t *testing.T) {
	st, err := ParseStatement(
		"update T set A = A + 1, G = 'B', D = date '2024-06-01' where B >= 10")
	if err != nil {
		t.Fatal(err)
	}
	up := st.(*UpdateStmt)
	if up.Table != "T" || len(up.Sets) != 3 || up.Where == nil {
		t.Fatalf("update = %+v", up)
	}
	if up.Sets[0].Col != "A" || up.Sets[0].Expr == nil || up.Sets[0].Str != nil {
		t.Errorf("expr set = %+v", up.Sets[0])
	}
	if up.Sets[1].Col != "G" || up.Sets[1].Str == nil || *up.Sets[1].Str != "B" {
		t.Errorf("string set = %+v", up.Sets[1])
	}
	if up.Sets[2].Expr == nil {
		t.Errorf("date set should parse as an expression, got %+v", up.Sets[2])
	}
	st, err = ParseStatement("update T set A = 0")
	if err != nil {
		t.Fatal(err)
	}
	if st.(*UpdateStmt).Where != nil {
		t.Errorf("bare update should have nil predicate")
	}
}

// TestParseStatementErrors: malformed statements are rejected.
func TestParseStatementErrors(t *testing.T) {
	cases := []string{
		"",
		"drop sma m",                       // missing ON table
		"create table T ()",                // no columns
		"create table T (A varchar)",       // unknown type
		"create table T (A char)",          // char without length
		"create table T (A char(0))",       // bad length
		"delete T",                         // missing FROM
		"delete from T where A ~ 1",        // bad operator
		"drop sma m on T junk",             // trailing tokens
		"create table T (A date) junk",     // trailing tokens
		"insert into T",                    // missing VALUES
		"insert into T values",             // missing row
		"insert into T values (1,)",        // dangling comma
		"insert into T values (1) (2)",     // missing comma between rows
		"insert into T values (1, 2), (3)", // ragged arity
		"insert into T values (-'x')",      // negated string
		"update T",                         // missing SET
		"update T set",                     // missing assignment
		"update T set A",                   // missing '='
		"update T set A = ",                // missing value
		"update T set A = 1, A = 2",        // duplicate target
		"update T set A = 1 where",         // dangling WHERE
	}
	for _, src := range cases {
		if _, err := ParseStatement(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}
