// Package planner generates physical plans for parsed queries, the problem
// the paper devotes §3 to: "query processing — especially the generation of
// query execution plans — becomes a little more complex".
//
// For a query with a selection and grouped aggregates the planner
//
//  1. collects the table's SMAs and builds a Grader from the min/max and
//     count-group-by SMAs applicable to the WHERE clause,
//  2. tries to cover every select-list aggregate with an aggregate SMA of
//     compatible (equal or finer) grouping,
//  3. grades all buckets to estimate the ambivalent fraction, and
//  4. applies a page-cost model with the paper's Fig.-5 breakeven: if
//     reading the SMA-files plus the ambivalent buckets (at random-I/O
//     cost) exceeds a sequential scan, it falls back to the scan.
package planner

import (
	"context"
	"fmt"
	"strings"

	"sma/internal/core"
	"sma/internal/exec"
	"sma/internal/expr"
	"sma/internal/obs"
	"sma/internal/parallel"
	"sma/internal/parser"
	"sma/internal/pred"
	"sma/internal/storage"
	"sma/internal/tuple"
)

// CostModel weights page accesses. The defaults make one random bucket
// fetch cost four sequential page reads, which places the breakeven where
// the paper's Figure 5 has it (≈25% ambivalent buckets).
type CostModel struct {
	SeqPageCost  float64
	RandPageCost float64
}

// DefaultCostModel returns the standard weights.
func DefaultCostModel() CostModel {
	return CostModel{SeqPageCost: 1, RandPageCost: 4}
}

// Strategy identifies the chosen physical plan shape.
type Strategy uint8

// Plan strategies.
const (
	// StrategyFullScan is TableScan + Filter + GAggr, the paper's
	// "Query 1 without SMAs" baseline.
	StrategyFullScan Strategy = iota
	// StrategySMAGAggr answers the aggregation from aggregate SMAs for
	// qualifying buckets (Fig. 7).
	StrategySMAGAggr
	// StrategySMAScan uses SMAs only to skip disqualified buckets, with a
	// hash aggregation on top (Fig. 6 + GAggr).
	StrategySMAScan
	// StrategyMemScan scans an in-memory snapshot relation — the virtual
	// system tables of the introspection catalog. No pages, no SMAs.
	StrategyMemScan
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyFullScan:
		return "FullScan+GAggr"
	case StrategySMAGAggr:
		return "SMA_GAggr"
	case StrategySMAScan:
		return "SMA_Scan+GAggr"
	case StrategyMemScan:
		return "MemScan"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// Plan is an executable physical plan.
type Plan struct {
	Query    *parser.Query
	Strategy Strategy

	Heap   *storage.HeapFile
	Grader *core.Grader

	// Mem, when set, is the in-memory relation the plan scans instead of
	// Heap (StrategyMemScan: virtual system tables). Heap is nil then.
	Mem *exec.MemRelation

	// SMA_GAggr inputs (StrategySMAGAggr only).
	AggSMAs  []*core.SMA
	CountSMA *core.SMA

	// SelSMAs are the selection SMAs planning consulted for the WHERE
	// clause (the ones whose pages SMAPages counts); the stats layer
	// attributes per-SMA effectiveness from this list.
	SelSMAs []*core.SMA

	// DOP is the degree of intra-query parallelism the plan executes with
	// (1 = serial). Aggregation plans with DOP > 1 run through the
	// internal/parallel subsystem: one worker pipeline per bucket (or
	// page-range) partition, merged into one sorted result.
	DOP int

	// Exec selects the physical execution mode: batch-at-a-time operators
	// with selection vectors (the default) or the legacy row iterators,
	// plus the asynchronous page-prefetch window. Copied from the planner
	// at plan time.
	Exec exec.ExecOptions

	// Planning diagnostics.
	Grades   core.GradeCounts
	CostSMA  float64
	CostScan float64
	SMAPages int64 // pages of SMA-files the plan reads
	Reason   string

	// Span, when set, is the parent execution span the iterator pipeline
	// attaches its operator spans to (sort → fold → scan → prefetch, or
	// the parallel stage with its per-worker children). A nil Span builds
	// the exact untraced pipeline. Obs supplies the parallel-stage metric
	// families; it is stamped from the planner and independent of Span,
	// so metrics flow even when per-query tracing is off.
	Span *obs.Span
	Obs  *obs.Observer

	// statsSrc is the stats-reporting operator of the most recently built
	// iterator pipeline for this plan (see ScanStats).
	statsSrc exec.StatsReporter
	// gradeVec is the full bucket grading computed for the cost estimate;
	// the parallel executor reuses it instead of grading again.
	gradeVec []core.Grade
}

// StrategyName renders the strategy for display. Projection plans carry
// no aggregation operator, so the "+GAggr" suffix is dropped for them.
func (p *Plan) StrategyName() string {
	if p.Strategy == StrategyMemScan {
		return p.Strategy.String()
	}
	if !p.IsProjection() {
		return p.Strategy.String()
	}
	if p.Strategy == StrategySMAScan {
		return "SMA_Scan"
	}
	return "FullScan"
}

// Explain renders a one-line plan description plus cost details.
func (p *Plan) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s on %s", p.StrategyName(), p.Query.Table)
	if p.Query.Where != nil {
		fmt.Fprintf(&b, " where %s", p.Query.Where)
	}
	fmt.Fprintf(&b, "\n  buckets: %d qualify / %d disqualify / %d ambivalent (%.1f%%)",
		p.Grades.Qualifying, p.Grades.Disqualifying, p.Grades.Ambivalent,
		100*p.Grades.AmbivalentFrac())
	fmt.Fprintf(&b, "\n  cost: sma=%.0f scan=%.0f (sma pages %d)", p.CostSMA, p.CostScan, p.SMAPages)
	if p.DOP > 1 {
		fmt.Fprintf(&b, "\n  parallel: dop=%d", p.DOP)
	}
	fmt.Fprintf(&b, "\n  %s", p.Reason)
	return b.String()
}

// Planner plans queries against a table and its SMAs.
type Planner struct {
	Cost CostModel
	// DOP is the default degree of intra-query parallelism requested for
	// aggregation plans; values <= 1 plan serial execution. The effective
	// per-plan degree is capped by the work available (see ChooseDOP).
	DOP int
	// Exec is the physical execution mode stamped onto every plan: batch
	// vs row operators, batch size, prefetch window.
	Exec exec.ExecOptions
	// Obs, when set, is stamped onto every plan so the parallel executor
	// can feed the skew/utilization metric families. Nil disables.
	Obs *obs.Observer
}

// New creates a planner with the default cost model.
func New() *Planner { return &Planner{Cost: DefaultCostModel()} }

// ChooseDOP caps a requested degree of parallelism by the work the plan
// actually dispatches — surviving (non-disqualified) buckets for the SMA
// strategies, pages for a full scan — and by the buffer pool's capacity
// (each scan worker pins one page at a time; more workers than frames
// would exhaust the pool instead of helping). Projections always run
// serially: they stream tuples in physical order, which a merge stage
// would only re-serialize. The result is at least 1.
func (pl *Planner) ChooseDOP(p *Plan, requested int) int {
	if requested <= 1 || p.Mem != nil || p.IsProjection() {
		return 1
	}
	units := 0
	switch p.Strategy {
	case StrategyFullScan:
		units = int(p.Heap.NumPages())
	default:
		units = p.Grades.Qualifying + p.Grades.Ambivalent
	}
	if units < 2 {
		return 1
	}
	if requested > units {
		requested = units
	}
	if cap := p.Heap.Pool().Capacity(); requested > cap {
		requested = cap
	}
	return requested
}

// matchAggSMA finds an SMA that supplies spec's per-bucket values with a
// grouping equal to or finer than groupBy.
func matchAggSMA(smas []*core.SMA, spec exec.AggSpec, groupBy []string) *core.SMA {
	want := spec.Func.NeededSMAKind()
	for _, s := range smas {
		if s.Def.Agg != want {
			continue
		}
		if spec.Arg == nil {
			if s.Def.Expr != nil {
				continue
			}
		} else if s.Def.Expr == nil || !expr.Equal(spec.Arg, s.Def.Expr) {
			continue
		}
		if groupingCovers(s.Def.GroupBy, groupBy) {
			return s
		}
	}
	return nil
}

// groupingCovers reports whether the SMA grouping (superset semantics) can
// be rolled up to the query grouping.
func groupingCovers(smaGroupBy, queryGroupBy []string) bool {
	for _, q := range queryGroupBy {
		found := false
		for _, g := range smaGroupBy {
			if strings.EqualFold(q, g) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// selectionSMAs returns the SMAs a grader would consult for the
// predicate's columns: min/max SMAs on a filtered column and count SMAs
// grouped by one.
func selectionSMAs(smas []*core.SMA, p pred.Predicate) []*core.SMA {
	if p == nil {
		return nil
	}
	cols := map[string]bool{}
	for _, a := range pred.Atoms(p) {
		cols[a.Col] = true
		if a.RightCol != "" {
			cols[a.RightCol] = true
		}
	}
	var out []*core.SMA
	for _, s := range smas {
		use := false
		switch s.Def.Agg {
		case core.Min, core.Max:
			use = cols[s.Def.ColumnOf()]
		case core.Count:
			use = len(s.Def.GroupBy) == 1 && cols[strings.ToUpper(s.Def.GroupBy[0])]
		}
		if use {
			out = append(out, s)
		}
	}
	return out
}

// selectionSMAPages sums the pages of the SMA-files the consulted SMAs
// would be read from.
func selectionSMAPages(sel []*core.SMA) int64 {
	var total int64
	for _, s := range sel {
		total += s.PagesUsed()
	}
	return total
}

// PlanQuery builds the cheapest plan for q over heap with the given SMAs
// and picks its degree of parallelism from the planner's configured DOP.
func (pl *Planner) PlanQuery(q *parser.Query, heap *storage.HeapFile, smas []*core.SMA) (*Plan, error) {
	return pl.PlanQueryTraced(q, heap, smas, nil)
}

// PlanQueryTraced is PlanQuery with a tracing span: the bucket-grading
// pass — the in-memory sweep over the SMA vectors that the paper's plan
// generation hinges on — is timed as a "grade" child of sp. A nil sp
// plans exactly like PlanQuery.
func (pl *Planner) PlanQueryTraced(q *parser.Query, heap *storage.HeapFile, smas []*core.SMA, sp *obs.Span) (*Plan, error) {
	plan, err := pl.planQuery(q, heap, smas, sp)
	if err != nil {
		return nil, err
	}
	plan.DOP = pl.ChooseDOP(plan, pl.DOP)
	plan.Exec = pl.Exec
	plan.Obs = pl.Obs
	return plan, nil
}

// PlanMem plans a query over an in-memory relation — the virtual system
// tables. There are no pages, buckets, or SMAs to weigh, so the only
// strategy is a snapshot scan; projections, aggregation, HAVING, ORDER BY
// and LIMIT all compose on top exactly as they do over a heap.
func (pl *Planner) PlanMem(q *parser.Query, rel *exec.MemRelation) (*Plan, error) {
	schema := rel.Schema
	if q.IsProjection() {
		cols := q.ProjColumns(schema)
		if len(cols) == 0 {
			return nil, fmt.Errorf("planner: query must project, aggregate or group")
		}
		for _, c := range cols {
			if !schema.HasColumn(c) {
				return nil, fmt.Errorf("planner: unknown column %q in select list", c)
			}
		}
		for _, c := range q.OrderBy {
			if !schema.HasColumn(c) {
				return nil, fmt.Errorf("planner: unknown column %q in ORDER BY", c)
			}
		}
	} else {
		for _, g := range q.GroupBy {
			if !schema.HasColumn(g) {
				return nil, fmt.Errorf("planner: unknown column %q in GROUP BY", g)
			}
		}
	}
	return &Plan{
		Query:    q,
		Strategy: StrategyMemScan,
		Mem:      rel,
		DOP:      1,
		Exec:     pl.Exec,
		Obs:      pl.Obs,
		Reason:   "virtual system table; in-memory snapshot scan",
	}, nil
}

// gradeTraced runs the grading pass under a "grade" child span carrying
// the outcome counts the cost model decides on.
func gradeTraced(grader *core.Grader, w pred.Predicate, sp *obs.Span) []core.Grade {
	gs := sp.Child("grade")
	vec := grader.GradeAll(w)
	c := core.CountGrades(vec)
	gs.AddGrades(int64(c.Qualifying), int64(c.Disqualifying), int64(c.Ambivalent))
	gs.End()
	return vec
}

// planQuery picks the strategy; PlanQuery adds the degree of parallelism.
func (pl *Planner) planQuery(q *parser.Query, heap *storage.HeapFile, smas []*core.SMA, sp *obs.Span) (*Plan, error) {
	if q.IsProjection() {
		return pl.planProjection(q, heap, smas, sp)
	}
	specs := q.AggSpecs()
	plan := &Plan{Query: q, Heap: heap}
	grader := core.NewGrader(smas...)
	plan.Grader = grader

	totalPages := heap.NumPages()
	plan.CostScan = float64(totalPages) * pl.Cost.SeqPageCost

	hasSelSMA := q.Where == nil || grader.HasSelectionSMA(q.Where)
	if !hasSelSMA {
		// No SMA can grade the predicate: every bucket would be ambivalent,
		// so an SMA plan can only lose. (Aggregate SMAs alone cannot help:
		// the selection forces tuple inspection everywhere.)
		plan.Strategy = StrategyFullScan
		plan.Grades = core.GradeCounts{Ambivalent: heap.NumBuckets()}
		plan.CostSMA = plan.CostScan
		plan.Reason = "no selection SMA matches the predicate; sequential scan"
		return plan, nil
	}

	// Grade all buckets (an in-memory pass over the SMA vectors); the
	// vector is kept for the parallel executor.
	if q.Where != nil {
		plan.gradeVec = gradeTraced(grader, q.Where, sp)
		plan.Grades = core.CountGrades(plan.gradeVec)
	} else {
		plan.Grades = core.GradeCounts{Qualifying: heap.NumBuckets()}
	}

	// Try to cover every aggregate with an SMA.
	aggSMAs := make([]*core.SMA, len(specs))
	covered := len(specs) > 0
	needCount := false
	for i, sp := range specs {
		aggSMAs[i] = matchAggSMA(smas, sp, q.GroupBy)
		if aggSMAs[i] == nil {
			covered = false
			break
		}
		if sp.Func == exec.AggAvg {
			needCount = true
		}
	}
	var countSMA *core.SMA
	if covered && needCount {
		countSMA = matchAggSMA(smas, exec.AggSpec{Func: exec.AggCount}, q.GroupBy)
		if countSMA == nil {
			covered = false
		}
	}

	bucketPages := float64(heap.BucketPages)
	plan.SelSMAs = selectionSMAs(smas, q.Where)
	plan.SMAPages = selectionSMAPages(plan.SelSMAs)
	ambCost := float64(plan.Grades.Ambivalent) * bucketPages * pl.Cost.RandPageCost

	if covered {
		// SMA_GAggr reads the aggregate SMA files too.
		smaPages := plan.SMAPages
		seen := map[*core.SMA]bool{}
		for _, s := range aggSMAs {
			if !seen[s] {
				smaPages += s.PagesUsed()
				seen[s] = true
			}
		}
		if countSMA != nil && !seen[countSMA] {
			smaPages += countSMA.PagesUsed()
		}
		plan.CostSMA = float64(smaPages)*pl.Cost.SeqPageCost + ambCost
		if plan.CostSMA <= plan.CostScan {
			plan.Strategy = StrategySMAGAggr
			plan.AggSMAs = aggSMAs
			plan.CountSMA = countSMA
			plan.SMAPages = smaPages
			plan.Reason = "all aggregates covered by SMAs; qualifying buckets answered without page access"
			return plan, nil
		}
		plan.Strategy = StrategyFullScan
		plan.SMAPages = smaPages
		plan.Reason = fmt.Sprintf("ambivalent fraction %.1f%% beyond breakeven; sequential scan is cheaper",
			100*plan.Grades.AmbivalentFrac())
		return plan, nil
	}

	// Aggregates not fully covered: SMA_Scan feeds a hash aggregation;
	// qualifying buckets must be read too (their tuples feed the GAggr).
	qualCost := float64(plan.Grades.Qualifying) * bucketPages * pl.Cost.RandPageCost
	plan.CostSMA = float64(plan.SMAPages)*pl.Cost.SeqPageCost + ambCost + qualCost
	if plan.CostSMA <= plan.CostScan {
		plan.Strategy = StrategySMAScan
		plan.Reason = "aggregates not covered by SMAs; SMA scan skips disqualified buckets"
	} else {
		plan.Strategy = StrategyFullScan
		plan.Reason = "selection not selective enough for an SMA scan; sequential scan"
	}
	return plan, nil
}

// planProjection plans a non-aggregating query: an SMA scan when the
// selection SMAs prune enough buckets, else a sequential scan. Both shapes
// stream tuples (see TupleIterator) instead of materializing rows.
func (pl *Planner) planProjection(q *parser.Query, heap *storage.HeapFile, smas []*core.SMA, sp *obs.Span) (*Plan, error) {
	schema := heap.Schema()
	cols := q.ProjColumns(schema)
	if len(cols) == 0 {
		return nil, fmt.Errorf("planner: query must project, aggregate or group")
	}
	for _, c := range cols {
		if !schema.HasColumn(c) {
			return nil, fmt.Errorf("planner: unknown column %q in select list", c)
		}
	}
	for _, c := range q.OrderBy {
		if !schema.HasColumn(c) {
			return nil, fmt.Errorf("planner: unknown column %q in ORDER BY", c)
		}
	}
	plan := &Plan{Query: q, Heap: heap}
	grader := core.NewGrader(smas...)
	plan.Grader = grader
	plan.CostScan = float64(heap.NumPages()) * pl.Cost.SeqPageCost

	if q.Where != nil && !grader.HasSelectionSMA(q.Where) {
		plan.Strategy = StrategyFullScan
		plan.Grades = core.GradeCounts{Ambivalent: heap.NumBuckets()}
		plan.CostSMA = plan.CostScan
		plan.Reason = "no selection SMA matches the predicate; sequential scan"
		return plan, nil
	}
	if q.Where != nil {
		plan.gradeVec = gradeTraced(grader, q.Where, sp)
		plan.Grades = core.CountGrades(plan.gradeVec)
	} else {
		plan.Grades = core.GradeCounts{Qualifying: heap.NumBuckets()}
	}
	bucketPages := float64(heap.BucketPages)
	plan.SelSMAs = selectionSMAs(smas, q.Where)
	plan.SMAPages = selectionSMAPages(plan.SelSMAs)
	touched := float64(plan.Grades.Qualifying+plan.Grades.Ambivalent) * bucketPages * pl.Cost.RandPageCost
	plan.CostSMA = float64(plan.SMAPages)*pl.Cost.SeqPageCost + touched
	if plan.CostSMA <= plan.CostScan {
		plan.Strategy = StrategySMAScan
		plan.Reason = "projection; SMA scan skips disqualified buckets"
	} else {
		plan.Strategy = StrategyFullScan
		plan.Reason = "selection not selective enough for an SMA scan; sequential scan"
	}
	return plan, nil
}

// IsProjection reports whether the plan streams tuples (TupleIterator)
// rather than aggregation rows (RowIterator).
func (p *Plan) IsProjection() bool { return p.Query.IsProjection() }

// serialGrades returns the grade vector computed during planning, padded
// to the heap's bucket count (missing information degrades to Ambivalent,
// never to a wrong skip), or nil when planning did not grade. Serial scan
// operators reuse it instead of grading again, which also hands the
// prefetcher the surviving page set before the first page access.
func (p *Plan) serialGrades() []core.Grade {
	if p.gradeVec == nil {
		return nil
	}
	nb := p.Heap.NumBuckets()
	g := p.gradeVec
	if len(g) >= nb {
		return g[:nb]
	}
	out := make([]core.Grade, nb)
	copy(out, g)
	for i := len(g); i < nb; i++ {
		out[i] = core.Ambivalent
	}
	return out
}

// RowIterator builds the aggregation pipeline of the plan. The context, if
// non-nil, is threaded into the scan operators, which check it on every
// bucket or page so cancellation aborts the query mid-flight. With
// DOP > 1 the pipeline is the parallel executor: one worker per bucket
// (or page-range) partition, partial aggregates merged into one sorted
// stream, so the rows are the same as a serial run for any DOP.
func (p *Plan) RowIterator(ctx context.Context) (exec.RowIter, error) {
	if p.IsProjection() {
		return nil, fmt.Errorf("planner: projection plans stream tuples; use TupleIterator")
	}
	specs := p.Query.AggSpecs()

	if p.Mem != nil {
		sortSp := p.Span.Child("sort")
		foldSp := sortSp.Child("fold")
		scanSp := foldSp.Child("scan")
		scanSp.SetNote("mem_scan")
		scan := exec.NewMemScan(p.Mem.Schema, p.Mem.Tuples, p.Query.Where)
		scan.Ctx = ctx
		p.statsSrc = scan
		fold := exec.NewGAggr(exec.TraceTupleIter(scan, scanSp),
			p.Mem.Schema, specs, p.Query.GroupBy)
		var it exec.RowIter = exec.TraceRowIter(fold, foldSp)
		if len(p.Query.Having) > 0 {
			it = exec.NewHavingFilter(it, p.Query.GroupBy, specs, p.Query.Having)
		}
		it = exec.TraceRowIter(exec.NewSortRows(it), sortSp)
		if p.Query.Limit >= 0 {
			it = exec.NewLimitRows(it, p.Query.Limit)
		}
		return it, nil
	}

	// Span tree, consumer-on-top like a plan tree: sort → fold (or the
	// parallel merge stage) → scan → prefetch. With p.Span == nil every
	// child is nil and TraceRowIter/TraceBatchIter return their input
	// unchanged, so the disabled path builds the identical pipeline.
	sortSp := p.Span.Child("sort")
	var it exec.RowIter
	if p.DOP > 1 {
		mergeSp := sortSp.Child("merge")
		mergeSp.SetNote("dop=%d", p.DOP)
		op := &parallel.Agg{
			Heap:      p.Heap,
			Pred:      p.Query.Where,
			Specs:     specs,
			GroupBy:   p.Query.GroupBy,
			Grader:    p.Grader,
			Pregraded: p.gradeVec,
			DOP:       p.DOP,
			Ctx:       ctx,
			Exec:      p.Exec,
			Span:      mergeSp,
		}
		if p.Obs != nil {
			op.Metrics = p.Obs.Parallel
		}
		switch p.Strategy {
		case StrategySMAGAggr:
			op.Mode = parallel.ModeSMAGAggr
			op.AggSMAs = p.AggSMAs
			op.CountSMA = p.CountSMA
		case StrategySMAScan:
			op.Mode = parallel.ModeSMAScan
		default:
			op.Mode = parallel.ModeScan
		}
		p.statsSrc = op
		it = exec.TraceRowIter(op, mergeSp)
	} else {
		foldSp := sortSp.Child("fold")
		switch p.Strategy {
		case StrategySMAGAggr:
			foldSp.SetNote("sma_gaggr")
			op := exec.NewSMAGAggr(p.Heap, p.Query.Where, specs, p.Query.GroupBy,
				p.Grader, p.AggSMAs, p.CountSMA)
			op.Ctx = ctx
			op.Grades = p.serialGrades()
			op.Opts = p.Exec
			p.statsSrc = op
			it = exec.TraceRowIter(op, foldSp)
		case StrategySMAScan:
			if p.Exec.Batching() {
				scanSp := foldSp.Child("scan")
				scanSp.SetNote("sma_scan batch")
				scan := exec.NewBatchSMAScan(p.Heap, p.Query.Where, p.Grader, p.Exec)
				scan.Ctx = ctx
				scan.Grades = p.serialGrades()
				p.statsSrc = scan
				fold := exec.NewBatchGAggr(exec.TraceBatchIter(scan, scanSp),
					p.Heap.Schema(), specs, p.Query.GroupBy)
				it = exec.TraceRowIter(fold, foldSp)
			} else {
				scanSp := foldSp.Child("scan")
				scanSp.SetNote("sma_scan")
				scan := exec.NewSMAScan(p.Heap, p.Query.Where, p.Grader)
				scan.Ctx = ctx
				scan.Grades = p.serialGrades()
				scan.PrefetchWindow = p.Exec.EffectivePrefetchWindow()
				p.statsSrc = scan
				fold := exec.NewGAggr(exec.TraceTupleIter(scan, scanSp),
					p.Heap.Schema(), specs, p.Query.GroupBy)
				it = exec.TraceRowIter(fold, foldSp)
			}
		default:
			if p.Exec.Batching() {
				scanSp := foldSp.Child("scan")
				scanSp.SetNote("table_scan batch")
				scan := exec.NewBatchTableScan(p.Heap, p.Query.Where, p.Exec)
				scan.Ctx = ctx
				p.statsSrc = scan
				fold := exec.NewBatchGAggr(exec.TraceBatchIter(scan, scanSp),
					p.Heap.Schema(), specs, p.Query.GroupBy)
				it = exec.TraceRowIter(fold, foldSp)
			} else {
				scanSp := foldSp.Child("scan")
				scanSp.SetNote("table_scan")
				scan := exec.NewTableScan(p.Heap, p.Query.Where)
				scan.Ctx = ctx
				scan.PrefetchWindow = p.Exec.EffectivePrefetchWindow()
				p.statsSrc = scan
				fold := exec.NewGAggr(exec.TraceTupleIter(scan, scanSp),
					p.Heap.Schema(), specs, p.Query.GroupBy)
				it = exec.TraceRowIter(fold, foldSp)
			}
		}
	}
	if len(p.Query.Having) > 0 {
		it = exec.NewHavingFilter(it, p.Query.GroupBy, specs, p.Query.Having)
	}
	it = exec.TraceRowIter(exec.NewSortRows(it), sortSp)
	if p.Query.Limit >= 0 {
		it = exec.NewLimitRows(it, p.Query.Limit)
	}
	return it, nil
}

// TupleIterator builds the streaming tuple pipeline of a projection plan.
// Tuples are produced in physical order, one page at a time; nothing is
// materialized. The context, if non-nil, aborts the scan when cancelled.
func (p *Plan) TupleIterator(ctx context.Context) (exec.TupleIter, error) {
	if !p.IsProjection() {
		return nil, fmt.Errorf("planner: aggregation plans produce rows; use RowIterator")
	}
	scanSp := p.Span.Child("scan")
	var it exec.TupleIter
	if p.Mem != nil {
		scanSp.SetNote("mem_scan projection")
		scan := exec.NewMemScan(p.Mem.Schema, p.Mem.Tuples, p.Query.Where)
		scan.Ctx = ctx
		p.statsSrc = scan
		it = exec.TraceTupleIter(scan, scanSp)
	} else if p.Strategy == StrategySMAScan {
		scanSp.SetNote("sma_scan projection")
		scan := exec.NewSMAScan(p.Heap, p.Query.Where, p.Grader)
		scan.Ctx = ctx
		scan.Grades = p.serialGrades()
		scan.PrefetchWindow = p.Exec.EffectivePrefetchWindow()
		p.statsSrc = scan
		it = exec.TraceTupleIter(scan, scanSp)
	} else {
		scanSp.SetNote("table_scan projection")
		scan := exec.NewTableScan(p.Heap, p.Query.Where)
		scan.Ctx = ctx
		scan.PrefetchWindow = p.Exec.EffectivePrefetchWindow()
		p.statsSrc = scan
		it = exec.TraceTupleIter(scan, scanSp)
	}
	if len(p.Query.OrderBy) > 0 {
		var schema *tuple.Schema
		if p.Mem != nil {
			schema = p.Mem.Schema
		} else {
			schema = p.Heap.Schema()
		}
		st, err := exec.NewSortTuples(it, schema, p.Query.OrderBy, p.Query.OrderDesc)
		if err != nil {
			return nil, err
		}
		it = st
	}
	if p.Query.Limit >= 0 {
		it = exec.NewLimitTuples(it, p.Query.Limit)
	}
	return it, nil
}

// ScanStats returns the bucket grading and heap page statistics of the
// most recently built iterator pipeline for this plan, and whether one
// exists. For aggregation plans the stats are complete once the iterator
// is open (the operators are pipeline breakers); for projections they are
// complete when the stream is drained.
func (p *Plan) ScanStats() (exec.ScanStats, bool) {
	if p.statsSrc == nil {
		return exec.ScanStats{}, false
	}
	return p.statsSrc.Stats(), true
}

// Execute runs an aggregation plan to completion and returns the sorted
// result rows. It is the materializing path retained for the internal
// engine API and tests; streaming consumers use RowIterator/TupleIterator.
func (p *Plan) Execute() ([]exec.Row, error) {
	it, err := p.RowIterator(nil)
	if err != nil {
		return nil, err
	}
	return exec.CollectRows(it)
}
