package planner_test

import (
	"strings"
	"testing"

	"sma/internal/core"
	"sma/internal/parser"
	"sma/internal/planner"
	"sma/internal/storage"
	"sma/internal/testutil"
	"sma/internal/tpcd"
)

// newLineItem loads a small LINEITEM heap in the given order.
func newLineItem(t testing.TB, order tpcd.Order, sf float64) *storage.HeapFile {
	t.Helper()
	h := testutil.NewHeap(t, tpcd.LineItemSchema(), 1, 4096)
	if _, err := tpcd.LoadLineItem(h, tpcd.Config{ScaleFactor: sf, Seed: 21, Order: order}); err != nil {
		t.Fatal(err)
	}
	return h
}

// q1SMAs builds the paper's eight SMAs.
func q1SMAs(t testing.TB, h *storage.HeapFile) []*core.SMA {
	t.Helper()
	defs := []string{
		"define sma min select min(L_SHIPDATE) from LINEITEM",
		"define sma max select max(L_SHIPDATE) from LINEITEM",
		"define sma count select count(*) from LINEITEM group by L_RETURNFLAG, L_LINESTATUS",
		"define sma qty select sum(L_QUANTITY) from LINEITEM group by L_RETURNFLAG, L_LINESTATUS",
		"define sma dis select sum(L_DISCOUNT) from LINEITEM group by L_RETURNFLAG, L_LINESTATUS",
		"define sma ext select sum(L_EXTENDEDPRICE) from LINEITEM group by L_RETURNFLAG, L_LINESTATUS",
		"define sma extdis select sum(L_EXTENDEDPRICE * (1 - L_DISCOUNT)) from LINEITEM group by L_RETURNFLAG, L_LINESTATUS",
		"define sma extdistax select sum(L_EXTENDEDPRICE * (1 - L_DISCOUNT) * (1 + L_TAX)) from LINEITEM group by L_RETURNFLAG, L_LINESTATUS",
	}
	var out []*core.SMA
	for _, ddl := range defs {
		def, err := parser.ParseSMADef(ddl)
		if err != nil {
			t.Fatal(err)
		}
		s, err := core.Build(h, def)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, s)
	}
	return out
}

const q1SQL = `
SELECT L_RETURNFLAG, L_LINESTATUS,
       SUM(L_QUANTITY) AS SUM_QTY, SUM(L_EXTENDEDPRICE) AS SUM_BASE_PRICE,
       SUM(L_EXTENDEDPRICE*(1-L_DISCOUNT)) AS SUM_DISC_PRICE,
       SUM(L_EXTENDEDPRICE*(1-L_DISCOUNT)*(1+L_TAX)) AS SUM_CHARGE,
       AVG(L_QUANTITY) AS AVG_QTY, AVG(L_EXTENDEDPRICE) AS AVG_PRICE,
       AVG(L_DISCOUNT) AS AVG_DISC, COUNT(*) AS COUNT_ORDER
FROM LINEITEM
WHERE L_SHIPDATE <= DATE '1998-12-01' - INTERVAL '90' DAY
GROUP BY L_RETURNFLAG, L_LINESTATUS
ORDER BY L_RETURNFLAG, L_LINESTATUS`

func plan(t testing.TB, sql string, h *storage.HeapFile, smas []*core.SMA) *planner.Plan {
	t.Helper()
	q, err := parser.ParseQuery(sql)
	if err != nil {
		t.Fatal(err)
	}
	if q.Where != nil {
		if err := q.Where.Bind(h.Schema()); err != nil {
			t.Fatal(err)
		}
	}
	p, err := planner.New().PlanQuery(q, h, smas)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPlannerPicksSMAGAggr: with all SMAs present on sorted data, Query 1
// becomes an SMA_GAggr.
func TestPlannerPicksSMAGAggr(t *testing.T) {
	h := newLineItem(t, tpcd.OrderSorted, 0.002)
	smas := q1SMAs(t, h)
	p := plan(t, q1SQL, h, smas)
	if p.Strategy != planner.StrategySMAGAggr {
		t.Fatalf("strategy = %s, want SMA_GAggr\n%s", p.Strategy, p.Explain())
	}
	if p.CountSMA == nil {
		t.Errorf("AVG in query requires a count SMA in the plan")
	}
	if p.Grades.Ambivalent > 1 {
		t.Errorf("sorted data should have at most 1 ambivalent bucket: %+v", p.Grades)
	}
	rows, err := p.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Errorf("Q1 should produce 4 groups, got %d", len(rows))
	}
}

// TestPlannerFallsBackWithoutSelectionSMA: no min/max on the predicate
// column means a sequential scan.
func TestPlannerFallsBackWithoutSelectionSMA(t *testing.T) {
	h := newLineItem(t, tpcd.OrderSorted, 0.001)
	smas := q1SMAs(t, h)
	// Predicate on a column no SMA grades.
	p := plan(t, "select count(*) from LINEITEM where L_PARTKEY <= 1000", h, smas)
	if p.Strategy != planner.StrategyFullScan {
		t.Fatalf("strategy = %s, want FullScan\n%s", p.Strategy, p.Explain())
	}
	if !strings.Contains(p.Reason, "no selection SMA") {
		t.Errorf("reason = %q", p.Reason)
	}
}

// TestPlannerSMAScanWhenAggregatesUncovered: selection SMAs exist but the
// aggregate (sum of an unindexed expression) is not covered.
func TestPlannerSMAScanWhenAggregatesUncovered(t *testing.T) {
	h := newLineItem(t, tpcd.OrderSorted, 0.002)
	smas := q1SMAs(t, h)
	p := plan(t, "select sum(L_QUANTITY * L_TAX) from LINEITEM where L_SHIPDATE <= date '1993-06-01'", h, smas)
	if p.Strategy != planner.StrategySMAScan {
		t.Fatalf("strategy = %s, want SMA_Scan\n%s", p.Strategy, p.Explain())
	}
	rows, err := p.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Cross-check against the full scan.
	pFull := plan(t, "select sum(L_QUANTITY * L_TAX) from LINEITEM where L_SHIPDATE <= date '1993-06-01'", h, nil)
	if pFull.Strategy != planner.StrategyFullScan {
		t.Fatalf("without SMAs: %s", pFull.Strategy)
	}
	want, err := pFull.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.AlmostEqual(rows[0].Aggs[0], want[0].Aggs[0]) {
		t.Errorf("SMA scan result %v != full scan %v", rows[0].Aggs[0], want[0].Aggs[0])
	}
}

// TestPlannerBreakeven: shuffled data with a mid-domain cutoff leaves most
// buckets ambivalent, so the planner must fall back to the scan even though
// every aggregate is covered (Fig. 5's >25% region).
func TestPlannerBreakeven(t *testing.T) {
	h := newLineItem(t, tpcd.OrderShuffled, 0.002)
	smas := q1SMAs(t, h)
	sql := strings.Replace(q1SQL, "INTERVAL '90' DAY", "INTERVAL '1265' DAY", 1)
	p := plan(t, sql, h, smas)
	if p.Grades.AmbivalentFrac() < 0.5 {
		t.Fatalf("test setup: expected mostly ambivalent buckets, got %+v", p.Grades)
	}
	if p.Strategy != planner.StrategyFullScan {
		t.Fatalf("strategy = %s, want FullScan beyond breakeven\n%s", p.Strategy, p.Explain())
	}
	if !strings.Contains(p.Reason, "breakeven") {
		t.Errorf("reason = %q", p.Reason)
	}
}

// TestPlannerNoWhere: without a WHERE clause every bucket qualifies and the
// whole query is answered from the aggregate SMAs.
func TestPlannerNoWhere(t *testing.T) {
	h := newLineItem(t, tpcd.OrderDiagonal, 0.001)
	smas := q1SMAs(t, h)
	p := plan(t, "select L_RETURNFLAG, sum(L_QUANTITY) as S from LINEITEM group by L_RETURNFLAG order by L_RETURNFLAG", h, smas)
	if p.Strategy != planner.StrategySMAGAggr {
		t.Fatalf("strategy = %s\n%s", p.Strategy, p.Explain())
	}
	if p.Grades.Qualifying != h.NumBuckets() {
		t.Errorf("all buckets should qualify: %+v", p.Grades)
	}
	rows, err := p.Execute()
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check totals against a plain scan.
	pFull := plan(t, "select L_RETURNFLAG, sum(L_QUANTITY) as S from LINEITEM group by L_RETURNFLAG order by L_RETURNFLAG", h, nil)
	want, err := pFull.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(want) {
		t.Fatalf("groups %d != %d", len(rows), len(want))
	}
	for i := range rows {
		if !testutil.AlmostEqual(rows[i].Aggs[0], want[i].Aggs[0]) {
			t.Errorf("group %d: %v != %v", i, rows[i].Aggs[0], want[i].Aggs[0])
		}
	}
}

// TestPlannerRejectsNonAggregate: a query with neither aggregates nor
// grouping is rejected.
func TestPlannerRejectsNonAggregate(t *testing.T) {
	h := newLineItem(t, tpcd.OrderSorted, 0.0005)
	q := &parser.Query{Table: "LINEITEM"}
	if _, err := planner.New().PlanQuery(q, h, nil); err == nil {
		t.Errorf("expected error for empty query")
	}
}

// TestPlanExplain renders the diagnostics.
func TestPlanExplain(t *testing.T) {
	h := newLineItem(t, tpcd.OrderSorted, 0.001)
	smas := q1SMAs(t, h)
	p := plan(t, q1SQL, h, smas)
	out := p.Explain()
	for _, want := range []string{"SMA_GAggr", "buckets:", "cost:"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
}

// TestPlannerEquality: planner plans on a query with an equality predicate
// on a flag column, gradeable through the grouped count SMA.
func TestPlannerEqualityViaCountSMA(t *testing.T) {
	h := newLineItem(t, tpcd.OrderSorted, 0.001)
	var smas []*core.SMA
	def, err := parser.ParseSMADef("define sma rfcount select count(*) from LINEITEM group by L_RETURNFLAG")
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.Build(h, def)
	if err != nil {
		t.Fatal(err)
	}
	smas = append(smas, s)
	p := plan(t, "select count(*) as N from LINEITEM where L_RETURNFLAG = 'N'", h, smas)
	// L_RETURNFLAG is clustered on sorted-by-shipdate data ('N' appears
	// after the current date), so the count SMA should decide many buckets.
	if p.Grades.Qualifying+p.Grades.Disqualifying == 0 {
		t.Errorf("count SMA graded nothing: %+v", p.Grades)
	}
	rows, err := p.Execute()
	if err != nil {
		t.Fatal(err)
	}
	pFull := plan(t, "select count(*) as N from LINEITEM where L_RETURNFLAG = 'N'", h, nil)
	want, err := pFull.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Aggs[0] != want[0].Aggs[0] {
		t.Errorf("count %v != %v", rows[0].Aggs[0], want[0].Aggs[0])
	}
}
