// Package pred implements selection predicates: the paper's atomic
// comparisons (A = c, A <= c, A < c, A >= c, A > c, and the column-column
// forms A <= B, A < B) plus conjunction, disjunction and negation. Bucket
// grading over these predicates lives in internal/core; this package owns
// representation and tuple-level evaluation.
package pred

import (
	"fmt"
	"strings"

	"sma/internal/tuple"
)

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators. The paper's partitioning rules cover Eq, Le, Lt,
// Ge and Gt; Ne is supported at evaluation level and graded conservatively.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

// String renders the operator in SQL syntax.
func (op CmpOp) String() string {
	switch op {
	case Eq:
		return "="
	case Ne:
		return "<>"
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", uint8(op))
	}
}

// Compare applies op to two float64 values.
func (op CmpOp) Compare(l, r float64) bool {
	switch op {
	case Eq:
		return l == r
	case Ne:
		return l != r
	case Lt:
		return l < r
	case Le:
		return l <= r
	case Gt:
		return l > r
	case Ge:
		return l >= r
	default:
		panic("pred: invalid operator")
	}
}

// Flip mirrors the operator so that `c op A` becomes `A Flip(op) c`.
func (op CmpOp) Flip() CmpOp {
	switch op {
	case Lt:
		return Gt
	case Le:
		return Ge
	case Gt:
		return Lt
	case Ge:
		return Le
	default:
		return op
	}
}

// Predicate is a boolean condition on a tuple.
type Predicate interface {
	// Eval decides the predicate for t. Bind must have been called.
	Eval(t tuple.Tuple) bool
	// Bind resolves column references against s.
	Bind(s *tuple.Schema) error
	// String renders the predicate in SQL-ish syntax.
	String() string
}

// Atom is an atomic comparison: Col Op Value, or Col Op RightCol when
// RightCol is non-empty. Single-character CHAR columns participate via
// their byte value (see CharConst).
type Atom struct {
	Col      string
	Op       CmpOp
	RightCol string  // col-col comparison when non-empty
	Value    float64 // constant otherwise

	leftIdx, rightIdx int
	bound             bool
}

// NewAtom builds a column-vs-constant atom.
func NewAtom(col string, op CmpOp, value float64) *Atom {
	return &Atom{Col: strings.ToUpper(col), Op: op, Value: value, leftIdx: -1, rightIdx: -1}
}

// NewColAtom builds a column-vs-column atom (the paper's A <= B form).
func NewColAtom(col string, op CmpOp, rightCol string) *Atom {
	return &Atom{Col: strings.ToUpper(col), Op: op, RightCol: strings.ToUpper(rightCol), leftIdx: -1, rightIdx: -1}
}

// CharConst converts a single character to the constant domain, for
// predicates on CHAR(1) columns such as L_RETURNFLAG = 'R'.
func CharConst(c byte) float64 { return float64(c) }

// colValue extracts a comparable float64 from column i of t, treating
// CHAR(1) columns as their byte value.
func colValue(t tuple.Tuple, i int) float64 {
	c := t.Schema.Column(i)
	if c.Type == tuple.TChar {
		return float64(t.CharByte(i))
	}
	return t.Numeric(i)
}

// bindCol resolves name in s and checks it is comparable.
func bindCol(s *tuple.Schema, name string) (int, error) {
	i := s.ColumnIndex(name)
	if i < 0 {
		return -1, fmt.Errorf("pred: unknown column %q", name)
	}
	c := s.Column(i)
	if !c.Type.Numeric() && !(c.Type == tuple.TChar && c.Len == 1) {
		return -1, fmt.Errorf("pred: column %q (type %s, len %d) is not comparable", name, c.Type, c.Len)
	}
	return i, nil
}

// Bind resolves the atom's column references.
func (a *Atom) Bind(s *tuple.Schema) error {
	i, err := bindCol(s, a.Col)
	if err != nil {
		return err
	}
	a.leftIdx = i
	if a.RightCol != "" {
		j, err := bindCol(s, a.RightCol)
		if err != nil {
			return err
		}
		a.rightIdx = j
	}
	a.bound = true
	return nil
}

// Eval evaluates the comparison on t.
func (a *Atom) Eval(t tuple.Tuple) bool {
	if !a.bound {
		if err := a.Bind(t.Schema); err != nil {
			panic(err)
		}
	}
	l := colValue(t, a.leftIdx)
	r := a.Value
	if a.RightCol != "" {
		r = colValue(t, a.rightIdx)
	}
	return a.Op.Compare(l, r)
}

// String renders the atom.
func (a *Atom) String() string {
	if a.RightCol != "" {
		return fmt.Sprintf("%s %s %s", a.Col, a.Op, a.RightCol)
	}
	return fmt.Sprintf("%s %s %g", a.Col, a.Op, a.Value)
}

// And is a conjunction of predicates.
type And struct{ Kids []Predicate }

// NewAnd conjoins the given predicates.
func NewAnd(kids ...Predicate) *And { return &And{Kids: kids} }

// Bind binds every conjunct.
func (p *And) Bind(s *tuple.Schema) error {
	for _, k := range p.Kids {
		if err := k.Bind(s); err != nil {
			return err
		}
	}
	return nil
}

// Eval is true when every conjunct holds.
func (p *And) Eval(t tuple.Tuple) bool {
	for _, k := range p.Kids {
		if !k.Eval(t) {
			return false
		}
	}
	return true
}

// String renders the conjunction.
func (p *And) String() string { return joinKids(p.Kids, " AND ") }

// Or is a disjunction of predicates.
type Or struct{ Kids []Predicate }

// NewOr disjoins the given predicates.
func NewOr(kids ...Predicate) *Or { return &Or{Kids: kids} }

// Bind binds every disjunct.
func (p *Or) Bind(s *tuple.Schema) error {
	for _, k := range p.Kids {
		if err := k.Bind(s); err != nil {
			return err
		}
	}
	return nil
}

// Eval is true when any disjunct holds.
func (p *Or) Eval(t tuple.Tuple) bool {
	for _, k := range p.Kids {
		if k.Eval(t) {
			return true
		}
	}
	return false
}

// String renders the disjunction.
func (p *Or) String() string { return joinKids(p.Kids, " OR ") }

// Not negates a predicate.
type Not struct{ Kid Predicate }

// NewNot negates p.
func NewNot(p Predicate) *Not { return &Not{Kid: p} }

// Bind binds the negated predicate.
func (p *Not) Bind(s *tuple.Schema) error { return p.Kid.Bind(s) }

// Eval inverts the child.
func (p *Not) Eval(t tuple.Tuple) bool { return !p.Kid.Eval(t) }

// String renders the negation.
func (p *Not) String() string { return "NOT (" + p.Kid.String() + ")" }

// True is the always-true predicate (absent WHERE clause).
type True struct{}

// Bind is a no-op.
func (True) Bind(*tuple.Schema) error { return nil }

// Eval is always true.
func (True) Eval(tuple.Tuple) bool { return true }

// String renders TRUE.
func (True) String() string { return "TRUE" }

func joinKids(kids []Predicate, sep string) string {
	parts := make([]string, len(kids))
	for i, k := range kids {
		parts[i] = "(" + k.String() + ")"
	}
	return strings.Join(parts, sep)
}

// Clone returns a deep copy of p. Binding state is copied too, so a clone
// of a bound predicate is immediately evaluable; re-binding the clone never
// touches the original. Parallel partition workers evaluate clones so that
// Bind's index writes cannot race on a shared plan predicate.
func Clone(p Predicate) Predicate {
	switch x := p.(type) {
	case nil:
		return nil
	case *Atom:
		c := *x
		return &c
	case *And:
		kids := make([]Predicate, len(x.Kids))
		for i, k := range x.Kids {
			kids[i] = Clone(k)
		}
		return &And{Kids: kids}
	case *Or:
		kids := make([]Predicate, len(x.Kids))
		for i, k := range x.Kids {
			kids[i] = Clone(k)
		}
		return &Or{Kids: kids}
	case *Not:
		return &Not{Kid: Clone(x.Kid)}
	default:
		// Stateless predicates (True) are safe to share.
		return p
	}
}

// Atoms collects every atomic comparison in p, in syntax order.
func Atoms(p Predicate) []*Atom {
	var out []*Atom
	var walk func(Predicate)
	walk = func(q Predicate) {
		switch x := q.(type) {
		case *Atom:
			out = append(out, x)
		case *And:
			for _, k := range x.Kids {
				walk(k)
			}
		case *Or:
			for _, k := range x.Kids {
				walk(k)
			}
		case *Not:
			walk(x.Kid)
		}
	}
	walk(p)
	return out
}

// Columns returns the sorted, de-duplicated set of columns referenced by p.
func Columns(p Predicate) []string {
	set := map[string]bool{}
	for _, a := range Atoms(p) {
		set[a.Col] = true
		if a.RightCol != "" {
			set[a.RightCol] = true
		}
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
