package pred

import (
	"testing"
	"testing/quick"

	"sma/internal/tuple"
)

func schema(t testing.TB) *tuple.Schema {
	t.Helper()
	return tuple.MustSchema([]tuple.Column{
		{Name: "A", Type: tuple.TFloat64},
		{Name: "B", Type: tuple.TFloat64},
		{Name: "D", Type: tuple.TDate},
		{Name: "F", Type: tuple.TChar, Len: 1},
		{Name: "LONG", Type: tuple.TChar, Len: 8},
	})
}

func row(t testing.TB, a, b float64, f byte) tuple.Tuple {
	t.Helper()
	tp := tuple.NewTuple(schema(t))
	tp.SetFloat64(0, a)
	tp.SetFloat64(1, b)
	tp.SetChar(3, string(f))
	return tp
}

func TestCmpOps(t *testing.T) {
	cases := []struct {
		op   CmpOp
		l, r float64
		want bool
	}{
		{Eq, 1, 1, true}, {Eq, 1, 2, false},
		{Ne, 1, 2, true}, {Ne, 1, 1, false},
		{Lt, 1, 2, true}, {Lt, 2, 2, false},
		{Le, 2, 2, true}, {Le, 3, 2, false},
		{Gt, 3, 2, true}, {Gt, 2, 2, false},
		{Ge, 2, 2, true}, {Ge, 1, 2, false},
	}
	for _, tc := range cases {
		if got := tc.op.Compare(tc.l, tc.r); got != tc.want {
			t.Errorf("%v %s %v = %v, want %v", tc.l, tc.op, tc.r, got, tc.want)
		}
	}
}

func TestFlip(t *testing.T) {
	// c op A  must be equivalent to  A Flip(op) c.
	for _, op := range []CmpOp{Eq, Ne, Lt, Le, Gt, Ge} {
		for _, c := range []float64{1, 2, 3} {
			for _, a := range []float64{1, 2, 3} {
				if op.Compare(c, a) != op.Flip().Compare(a, c) {
					t.Errorf("Flip(%s) broken for c=%v a=%v", op, c, a)
				}
			}
		}
	}
}

func TestAtomEval(t *testing.T) {
	tp := row(t, 10, 20, 'R')
	cases := []struct {
		p    Predicate
		want bool
	}{
		{NewAtom("A", Le, 10), true},
		{NewAtom("A", Lt, 10), false},
		{NewAtom("a", Ge, 5), true}, // case-insensitive
		{NewColAtom("A", Lt, "B"), true},
		{NewColAtom("B", Lt, "A"), false},
		{NewAtom("F", Eq, CharConst('R')), true},
		{NewAtom("F", Eq, CharConst('N')), false},
	}
	for _, tc := range cases {
		if err := tc.p.Bind(tp.Schema); err != nil {
			t.Fatalf("bind %s: %v", tc.p, err)
		}
		if got := tc.p.Eval(tp); got != tc.want {
			t.Errorf("%s = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestBoolEval(t *testing.T) {
	tp := row(t, 10, 20, 'R')
	lt := NewAtom("A", Lt, 15) // true
	gt := NewAtom("A", Gt, 15) // false
	cases := []struct {
		p    Predicate
		want bool
	}{
		{NewAnd(lt, NewAtom("B", Eq, 20)), true},
		{NewAnd(lt, gt), false},
		{NewOr(gt, lt), true},
		{NewOr(gt, gt), false},
		{NewNot(gt), true},
		{NewNot(lt), false},
		{True{}, true},
		{NewAnd(), true}, // empty conjunction is vacuously true
		{NewOr(), false}, // empty disjunction is vacuously false
	}
	for _, tc := range cases {
		if err := tc.p.Bind(tp.Schema); err != nil {
			t.Fatalf("bind: %v", err)
		}
		if got := tc.p.Eval(tp); got != tc.want {
			t.Errorf("%s = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestBindErrors(t *testing.T) {
	s := schema(t)
	if err := NewAtom("NOPE", Eq, 1).Bind(s); err == nil {
		t.Errorf("unknown column should fail")
	}
	if err := NewAtom("LONG", Eq, 1).Bind(s); err == nil {
		t.Errorf("multi-char column should not be comparable")
	}
	if err := NewColAtom("A", Le, "NOPE").Bind(s); err == nil {
		t.Errorf("unknown right column should fail")
	}
}

func TestAtomsAndColumns(t *testing.T) {
	p := NewOr(
		NewAnd(NewAtom("A", Le, 1), NewAtom("B", Gt, 2)),
		NewNot(NewColAtom("D", Lt, "A")),
	)
	atoms := Atoms(p)
	if len(atoms) != 3 {
		t.Fatalf("Atoms = %d, want 3", len(atoms))
	}
	cols := Columns(p)
	want := []string{"A", "B", "D"}
	if len(cols) != len(want) {
		t.Fatalf("Columns = %v", cols)
	}
	for i := range want {
		if cols[i] != want[i] {
			t.Errorf("Columns[%d] = %s, want %s", i, cols[i], want[i])
		}
	}
}

func TestString(t *testing.T) {
	p := NewAnd(NewAtom("A", Le, 5), NewNot(NewColAtom("A", Lt, "B")))
	got := p.String()
	if got != "(A <= 5) AND (NOT (A < B))" {
		t.Errorf("String = %q", got)
	}
}

// TestQuickDeMorgan property-tests ¬(p ∧ q) ≡ (¬p) ∨ (¬q) over random rows.
func TestQuickDeMorgan(t *testing.T) {
	s := schema(t)
	f := func(a, b float64, c1, c2 float64) bool {
		tp := tuple.NewTuple(s)
		tp.SetFloat64(0, a)
		tp.SetFloat64(1, b)
		p := NewAtom("A", Le, c1)
		q := NewAtom("B", Gt, c2)
		lhs := NewNot(NewAnd(p, q))
		rhs := NewOr(NewNot(p), NewNot(q))
		if err := lhs.Bind(s); err != nil {
			return false
		}
		if err := rhs.Bind(s); err != nil {
			return false
		}
		return lhs.Eval(tp) == rhs.Eval(tp)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickFlipInvolution: flipping twice is the identity.
func TestQuickFlipInvolution(t *testing.T) {
	f := func(op uint8) bool {
		o := CmpOp(op % 6)
		return o.Flip().Flip() == o
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
