// Package projidx implements projection indexes (O'Neil/Quass), the
// structure the paper generalizes: "In a projection index on a certain
// attribute, for all tuples in the relation to index, the attribute value
// is stored sequentially in a file. SMAs generalize this approach in that
// an aggregate value is stored for a set of tuples instead of mere
// projection values." An SMA whose buckets hold exactly one tuple
// degenerates to a projection index; a property test asserts that.
package projidx

import (
	"fmt"

	"sma/internal/pred"
	"sma/internal/storage"
	"sma/internal/tuple"
)

// Index is a projection index: the values of one column in tuple order.
type Index struct {
	Column string
	width  int // bytes per value, for size accounting
	vals   []float64
	rids   []storage.RID
}

// Build scans the heap file and materializes the projection of column.
func Build(h *storage.HeapFile, column string) (*Index, error) {
	ci := h.Schema().ColumnIndex(column)
	if ci < 0 {
		return nil, fmt.Errorf("projidx: unknown column %q", column)
	}
	col := h.Schema().Column(ci)
	width := col.Width()
	idx := &Index{Column: column, width: width}
	err := h.Scan(func(t tuple.Tuple, rid storage.RID) error {
		idx.vals = append(idx.vals, t.Numeric(ci))
		idx.rids = append(idx.rids, rid)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return idx, nil
}

// Len returns the number of values.
func (ix *Index) Len() int { return len(ix.vals) }

// Value returns the i-th projected value.
func (ix *Index) Value(i int) float64 { return ix.vals[i] }

// RID returns the RID of the i-th tuple.
func (ix *Index) RID(i int) storage.RID { return ix.rids[i] }

// SizeBytes returns the value-file size (values only, as the paper counts
// SMA sizes).
func (ix *Index) SizeBytes() int64 { return int64(len(ix.vals)) * int64(ix.width) }

// PagesUsed returns the page count of the value file.
func (ix *Index) PagesUsed() int64 {
	return (ix.SizeBytes() + storage.PageSize - 1) / storage.PageSize
}

// Select evaluates the comparison against every projected value and
// returns the positions (tuple ordinals) of matches. This is the
// projection-index selection path: sequential over the value file, no
// access to the relation.
func (ix *Index) Select(op pred.CmpOp, c float64) []int {
	var out []int
	for i, v := range ix.vals {
		if op.Compare(v, c) {
			out = append(out, i)
		}
	}
	return out
}

// SelectRIDs is Select returning RIDs.
func (ix *Index) SelectRIDs(op pred.CmpOp, c float64) []storage.RID {
	var out []storage.RID
	for i, v := range ix.vals {
		if op.Compare(v, c) {
			out = append(out, ix.rids[i])
		}
	}
	return out
}

// Sum aggregates the projected values of the positions that satisfy the
// comparison — the projection-index way of computing a filtered aggregate
// on the indexed column without touching the relation.
func (ix *Index) Sum(op pred.CmpOp, c float64) (sum float64, n int) {
	for _, v := range ix.vals {
		if op.Compare(v, c) {
			sum += v
			n++
		}
	}
	return sum, n
}
