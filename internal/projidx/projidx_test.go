package projidx_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sma/internal/core"
	"sma/internal/expr"
	"sma/internal/pred"
	"sma/internal/projidx"
	"sma/internal/storage"
	"sma/internal/testutil"
)

func load(t testing.TB, vals []float64) *storage.HeapFile {
	t.Helper()
	h := testutil.NewHeap(t, testutil.PaddedFloatSchema(t, 1), 1, 64)
	testutil.AppendFloats(t, h, vals...)
	return h
}

func TestBuildAndSelect(t *testing.T) {
	vals := []float64{5, 1, 9, 3, 7}
	ix, err := projidx.Build(load(t, vals), "A")
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 5 {
		t.Fatalf("Len = %d", ix.Len())
	}
	for i, v := range vals {
		if ix.Value(i) != v {
			t.Errorf("Value(%d) = %g, want %g (tuple order must be preserved)", i, ix.Value(i), v)
		}
	}
	got := ix.Select(pred.Le, 5)
	if len(got) != 3 { // 5, 1, 3
		t.Errorf("Select(<=5) = %v", got)
	}
	rids := ix.SelectRIDs(pred.Gt, 6)
	if len(rids) != 2 {
		t.Errorf("SelectRIDs(>6) = %v", rids)
	}
	sum, n := ix.Sum(pred.Ge, 5)
	if sum != 21 || n != 3 { // 5+9+7
		t.Errorf("Sum(>=5) = %g/%d", sum, n)
	}
	if _, err := projidx.Build(load(t, vals), "NOPE"); err == nil {
		t.Errorf("unknown column should fail")
	}
}

func TestSizeAccounting(t *testing.T) {
	vals := make([]float64, 1000)
	ix, err := projidx.Build(load(t, vals), "A")
	if err != nil {
		t.Fatal(err)
	}
	if ix.SizeBytes() != 8000 {
		t.Errorf("SizeBytes = %d, want 8000", ix.SizeBytes())
	}
	if ix.PagesUsed() != (8000+storage.PageSize-1)/storage.PageSize {
		t.Errorf("PagesUsed = %d", ix.PagesUsed())
	}
}

// TestSMADegeneratesToProjectionIndex is the paper's claim "For the case
// where a bucket contains exactly a single tuple, a SMA degenerates to a
// projection index": with one tuple per bucket, the min (or max) SMA's
// entries are exactly the projection index's value file, and grading
// equals per-value predicate evaluation.
func TestSMADegeneratesToProjectionIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := make([]float64, 400)
	for i := range vals {
		vals[i] = float64(rng.Intn(1000))
	}
	h := load(t, vals) // 1 record per page, bucket = 1 page -> 1 tuple per bucket
	if h.NumBuckets() != len(vals) {
		t.Fatalf("setup: %d buckets for %d tuples", h.NumBuckets(), len(vals))
	}
	ix, err := projidx.Build(h, "A")
	if err != nil {
		t.Fatal(err)
	}
	mn, err := core.Build(h, core.NewDef("mn", "T", core.Min, expr.NewCol("A")))
	if err != nil {
		t.Fatal(err)
	}
	mx, err := core.Build(h, core.NewDef("mx", "T", core.Max, expr.NewCol("A")))
	if err != nil {
		t.Fatal(err)
	}
	// Entry-by-entry equality with the projection index.
	for b := 0; b < h.NumBuckets(); b++ {
		lo, _ := mn.BucketMin(b)
		hi, _ := mx.BucketMax(b)
		if lo != ix.Value(b) || hi != ix.Value(b) {
			t.Fatalf("bucket %d: SMA (%g,%g) != projection %g", b, lo, hi, ix.Value(b))
		}
	}
	// Grading degenerates to exact selection: no ambivalence possible for
	// range predicates on single-tuple buckets.
	g := core.NewGrader(mn, mx)
	for _, op := range []pred.CmpOp{pred.Le, pred.Lt, pred.Ge, pred.Gt} {
		c := float64(rng.Intn(1000))
		atom := pred.NewAtom("A", op, c)
		matches := map[int]bool{}
		for _, i := range ix.Select(op, c) {
			matches[i] = true
		}
		for b := 0; b < h.NumBuckets(); b++ {
			grade := g.Grade(b, atom)
			if grade == core.Ambivalent {
				t.Fatalf("op %s: single-tuple bucket %d graded ambivalent", op, b)
			}
			if (grade == core.Qualifies) != matches[b] {
				t.Fatalf("op %s bucket %d: grade %s, projection match %v", op, b, grade, matches[b])
			}
		}
	}
}

// TestQuickSelectMatchesScan: projection-index selection equals a naive
// scan for random data and operators.
func TestQuickSelectMatchesScan(t *testing.T) {
	f := func(seed int64, opRaw uint8, c float64) bool {
		op := []pred.CmpOp{pred.Eq, pred.Ne, pred.Lt, pred.Le, pred.Gt, pred.Ge}[opRaw%6]
		rng := rand.New(rand.NewSource(seed))
		vals := make([]float64, 200)
		for i := range vals {
			vals[i] = float64(rng.Intn(50))
		}
		c = float64(int(c) % 50)
		ix, err := projidx.Build(load(t, vals), "A")
		if err != nil {
			return false
		}
		want := 0
		for _, v := range vals {
			if op.Compare(v, c) {
				want++
			}
		}
		return len(ix.Select(op, c)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
