package server_test

import (
	"context"
	"net/http"
	"runtime"
	"testing"
	"time"

	"sma/client"
	"sma/internal/server"
)

// TestClientDisconnectCancelsQuery kills the connection in the middle of
// a slow result stream and asserts the serving contract: the underlying
// cursor's context is cancelled (the server counts the abort), the
// session unregisters, the database read lock is released (a write can
// run immediately), and no goroutine leaks (goleak-style count).
func TestClientDisconnectCancelsQuery(t *testing.T) {
	ts := slowServer(t, server.Config{MaxConcurrent: 2, QueueTimeout: time.Second})
	monitor := client.New(ts.Base)

	// Warm the HTTP paths on both sides so the goroutine baseline below
	// includes the keep-alive machinery.
	if _, err := drainQuery(monitor, "select count(*) as C from BIG"); err != nil {
		t.Fatal(err)
	}
	if _, err := monitor.Status(context.Background()); err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	base := runtime.NumGoroutine()

	// A dedicated transport so closing its idle connections tears down
	// exactly this query's client side.
	tr := &http.Transport{}
	qc := client.New(ts.Base, client.WithHTTPClient(&http.Client{Transport: tr}))
	ctx, cancel := context.WithCancel(context.Background())
	rows, err := qc.Query(ctx, "select D, PAD from BIG")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !rows.Next() {
			t.Fatalf("stream ended after %d rows: %v", i, rows.Err())
		}
	}
	cancel() // disconnect: the request context aborts and the conn closes
	rows.Close()
	tr.CloseIdleConnections()

	// The server observed the cancellation mid-batch and unwound the
	// session; cancelled queries are counted, not errors.
	waitFor(t, "server to observe the cancellation", func() bool {
		st, err := monitor.Status(context.Background())
		return err == nil && st.Totals.Cancelled >= 1 && len(st.Sessions) == 0 &&
			st.Admission.Active == 0 && st.Totals.Errors == 0
	})

	// The cursor's read lock is gone: a write-locking statement runs
	// immediately instead of deadlocking behind a leaked cursor.
	if _, err := ts.DB.Exec("insert into BIG values (date '2024-06-01', 'y')"); err != nil {
		t.Fatal(err)
	}

	// Goroutine count returns to the pre-query baseline.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > base {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutine leak after disconnect: %d -> %d\n%s",
			base, n, buf[:runtime.Stack(buf, true)])
	}
}
