package server_test

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"sma"
	"sma/client"
	"sma/internal/oracle"
	"sma/internal/server"
)

// runWireDiff replays the internal/oracle seeded workload through a live
// server over HTTP and through a direct sma.DB in lockstep, requiring
// byte-identical results: same RowsAffected for every write, same
// rendered columns/rows and the same physical strategy for every query.
// sessions streams run concurrently, each owning its own table (and its
// own seed) on both databases, so the per-session comparison stays exact
// while the server juggles all of them. Run under -race: this is the
// wire-protocol acceptance check.
func runWireDiff(t *testing.T, sessions, ops int) {
	t.Helper()
	dop := runtime.NumCPU()
	if dop < 2 {
		dop = 2 // the parallel partition/merge path must run even on 1 core
	}
	dbOpts := []sma.Option{sma.WithBucketPages(1), sma.WithParallelism(dop)}
	ts := startServer(t, dbOpts, server.Config{
		MaxConcurrent: sessions, QueueTimeout: 60 * time.Second,
	})
	direct, err := sma.Open(t.TempDir(), dbOpts...)
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()

	ctx := context.Background()
	var wg sync.WaitGroup
	errc := make(chan error, sessions)
	for si := 0; si < sessions; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			if err := wireDiffSession(ctx, ts, direct, si, ops, dop); err != nil {
				errc <- fmt.Errorf("session %d: %w", si, err)
			}
		}(si)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if t.Failed() {
		return
	}
	// The drain contract closes the run: stop admitting, wait for every
	// in-flight cursor, leave the database immediately closable.
	sctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := ts.Srv.Shutdown(sctx); err != nil {
		t.Fatalf("graceful shutdown after workload: %v", err)
	}
	st, err := client.New(ts.Base).Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Sessions) != 0 || st.Admission.Active != 0 || !st.Admission.Draining {
		t.Fatalf("post-drain status: %+v", st.Admission)
	}
}

// wireDiffSession drives one generator stream through both paths.
func wireDiffSession(ctx context.Context, ts *testServer, direct *sma.DB, si, ops, dop int) error {
	c := client.New(ts.Base)
	g := oracle.NewGenFor(int64(100+si), fmt.Sprintf("W%d", si))
	for _, sql := range g.Setup() {
		if _, err := c.Exec(ctx, sql); err != nil {
			return fmt.Errorf("wire setup: %w", err)
		}
		if _, err := direct.Exec(sql); err != nil {
			return fmt.Errorf("direct setup: %w", err)
		}
	}
	for i := 0; i < ops; i++ {
		op := g.Next()
		if !op.IsQuery {
			wres, werr := c.Exec(ctx, op.SQL)
			dres, derr := direct.Exec(op.SQL)
			if (werr == nil) != (derr == nil) {
				return fmt.Errorf("step %d: %s: wire err %v, direct err %v", i, op.SQL, werr, derr)
			}
			if werr != nil {
				continue // both failed identically-shaped; generator avoids this
			}
			if wres.RowsAffected != dres.RowsAffected {
				return fmt.Errorf("step %d: %s: wire affected %d, direct %d",
					i, op.SQL, wres.RowsAffected, dres.RowsAffected)
			}
			continue
		}
		// Exercise the per-request knobs while keeping both sides equal:
		// every third query forces serial, every fifth the row fallback.
		var wopts []client.QueryOption
		var dopts []sma.QueryOption
		if i%3 == 0 {
			wopts = append(wopts, client.WithDOP(1))
			dopts = append(dopts, sma.WithQueryParallelism(1))
		}
		if i%5 == 0 {
			wopts = append(wopts, client.WithBatchSize(-1))
			dopts = append(dopts, sma.WithQueryBatchSize(-1))
		}
		rows, err := c.Query(ctx, op.SQL, wopts...)
		if err != nil {
			return fmt.Errorf("step %d: wire: %s: %w", i, op.SQL, err)
		}
		var wire [][]string
		for rows.Next() {
			wire = append(wire, append([]string(nil), rows.Row()...))
		}
		werr := rows.Err()
		wcols, wstrat := rows.Columns(), rows.Strategy()
		rows.Close()
		if werr != nil {
			return fmt.Errorf("step %d: wire: %s: %w", i, op.SQL, werr)
		}
		drows, err := direct.Query(op.SQL, dopts...)
		if err != nil {
			return fmt.Errorf("step %d: direct: %s: %w", i, op.SQL, err)
		}
		want, err := sma.Collect(drows)
		if err != nil {
			return fmt.Errorf("step %d: direct: %s: %w", i, op.SQL, err)
		}
		if wstrat != want.Strategy {
			return fmt.Errorf("step %d: %s: wire strategy %q, direct %q", i, op.SQL, wstrat, want.Strategy)
		}
		if len(wcols) != len(want.Columns) {
			return fmt.Errorf("step %d: %s: wire cols %v, direct %v", i, op.SQL, wcols, want.Columns)
		}
		for j := range wcols {
			if !strings.EqualFold(wcols[j], want.Columns[j]) {
				return fmt.Errorf("step %d: %s: column %d %q vs %q", i, op.SQL, j, wcols[j], want.Columns[j])
			}
		}
		if len(wire) != len(want.Rows) {
			return fmt.Errorf("step %d: %s (plan %s): wire %d rows, direct %d\nwire: %v\ndirect: %v",
				i, op.SQL, wstrat, len(wire), len(want.Rows), wire, want.Rows)
		}
		for r := range wire {
			for cidx := range wire[r] {
				if wire[r][cidx] != want.Rows[r][cidx] {
					return fmt.Errorf("step %d: %s (plan %s): row %d col %d: %q vs %q",
						i, op.SQL, wstrat, r, cidx, wire[r][cidx], want.Rows[r][cidx])
				}
			}
		}
	}
	return nil
}

// TestWireDifferential is the acceptance check: 8 concurrent sessions,
// each replaying a 150-op seeded oracle workload through HTTP, must be
// byte-identical to direct engine calls, with a clean drain at the end.
func TestWireDifferential(t *testing.T) {
	ops := 150
	if testing.Short() {
		ops = 40
	}
	runWireDiff(t, 8, ops)
}
