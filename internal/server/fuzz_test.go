package server_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"sma/internal/server"
)

// FuzzDecodeRequest fuzzes the wire request decoders with every statement
// form the SQL surface accepts plus malformed shells. Properties: the
// decoders never panic, accepted requests satisfy the documented bounds,
// and a re-encoded accepted request decodes back to the same value.
func FuzzDecodeRequest(f *testing.F) {
	for _, seed := range []string{
		// Every statement form, as /query and /exec bodies.
		`{"sql":"select count(*) from W"}`,
		`{"sql":"select K, sum(V) as S, avg(V) as A from W where D <= date '2024-03-01' and not (K = 'B') group by K having S > 3 order by K","dop":4,"batch_size":256,"timeout_ms":1000}`,
		`{"sql":"select * from W limit 10","batch_size":-1}`,
		`{"sql":"select D, K from W where V >= 1.5 or N <> 3","dop":1}`,
		`{"sql":"insert into W values (date '2024-01-01', 'A', 1.5, 3, 'p'), ('2024-01-02', 'B', -2, 4, '')"}`,
		`{"sql":"insert into W (K, D, V, N, PAD) values ('A', '2024-01-01', 0.5, 1, 'x')"}`,
		`{"sql":"update W set V = V + 1.5, K = 'C' where N > 3"}`,
		`{"sql":"delete from W where D >= date '2024-06-01'"}`,
		`{"sql":"delete from W"}`,
		`{"sql":"create table W (D date, K char(1), V float64, N int64, PAD char(500))"}`,
		`{"sql":"define sma s1 select sum(V) from W group by K"}`,
		`{"sql":"define sma dmin select min(D) from W"}`,
		`{"sql":"drop sma s1 on W"}`,
		// Malformed shells and boundary knobs.
		``, `{`, `{}`, `[]`, `null`, `"sql"`,
		`{"sql":""}`,
		`{"sql":"select 1","bogus":true}`,
		`{"sql":"select 1"} {"sql":"trailing"}`,
		`{"sql":"q","dop":-1}`, `{"sql":"q","dop":513}`,
		`{"sql":"q","timeout_ms":-1}`, `{"sql":"q","timeout_ms":99999999999}`,
		`{"sql":"q","batch_size":null}`, `{"sql":"q","batch_size":-9999}`,
		`{"sql":"q","batch_size":2000000000}`,
		"{\"sql\":\" \x00\xff\",\"dop\":0}",
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if req, err := server.DecodeQueryRequest(bytes.NewReader(data)); err == nil {
			if req.SQL == "" || len(req.SQL) > server.MaxSQLBytes {
				t.Fatalf("accepted out-of-bounds sql (len %d)", len(req.SQL))
			}
			if req.DOP < 0 || req.DOP > server.MaxDOP {
				t.Fatalf("accepted out-of-bounds dop %d", req.DOP)
			}
			if req.TimeoutMillis < 0 || req.TimeoutMillis > server.MaxTimeoutMillis {
				t.Fatalf("accepted out-of-bounds timeout_ms %d", req.TimeoutMillis)
			}
			if req.BatchSize != nil && *req.BatchSize > server.MaxBatchSize {
				t.Fatalf("accepted out-of-bounds batch_size %d", *req.BatchSize)
			}
			buf, err := json.Marshal(req)
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			req2, err := server.DecodeQueryRequest(bytes.NewReader(buf))
			if err != nil {
				t.Fatalf("re-decode of %s: %v", buf, err)
			}
			if !reflect.DeepEqual(req, req2) {
				t.Fatalf("round trip drifted: %+v vs %+v", req, req2)
			}
		}
		if req, err := server.DecodeExecRequest(bytes.NewReader(data)); err == nil {
			if req.SQL == "" || req.TimeoutMillis < 0 {
				t.Fatalf("accepted invalid exec request %+v", req)
			}
		}
	})
}
