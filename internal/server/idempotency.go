package server

import "sync"

// idemResult is the recorded outcome of one /exec execution: either a
// success response or the error body, with its HTTP status. Execution
// outcomes — success or failure — are recorded permanently for the key,
// because by the time the engine has run the statement its effects (or
// its atomic rollback) are settled; a retry must see the same answer,
// never a second execution. Pre-execution rejections (admission) are
// transient and abandon the key instead, so a later retry executes.
type idemResult struct {
	status  int
	resp    *ExecResponse
	errBody *ErrorResponse
}

// idemEntry is one key's slot: done closes when the leader finished (or
// abandoned), after which res is immutable.
type idemEntry struct {
	key  string
	done chan struct{}
	res  idemResult
}

// idempotency deduplicates /exec statements by client-chosen key. The
// first request for a key is the leader and executes; concurrent
// duplicates wait on the entry, later duplicates replay the recorded
// response. The table is bounded: completed entries are evicted in
// insertion order once the capacity is reached (in-flight entries are
// never evicted — their count is already bounded by admission control).
type idempotency struct {
	mu    sync.Mutex
	cap   int
	m     map[string]*idemEntry
	order []string
}

func newIdempotency(capacity int) *idempotency {
	return &idempotency{cap: capacity, m: make(map[string]*idemEntry, capacity)}
}

// begin claims a key. leader=true means the caller must execute and then
// call finish or abandon; leader=false means the entry belongs to an
// earlier request — wait on e.done, then read e.res.
func (t *idempotency) begin(key string) (e *idemEntry, leader bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.m[key]; ok {
		return e, false
	}
	t.evictLocked()
	e = &idemEntry{key: key, done: make(chan struct{})}
	t.m[key] = e
	t.order = append(t.order, key)
	return e, true
}

// evictLocked drops oldest completed entries until under capacity.
// Entries still in flight are skipped (kept in insertion order).
func (t *idempotency) evictLocked() {
	for len(t.m) >= t.cap && len(t.order) > 0 {
		var keep []string
		evicted := false
		for i, k := range t.order {
			e, ok := t.m[k]
			if !ok {
				continue // abandoned; drop from order
			}
			select {
			case <-e.done:
				delete(t.m, k)
				keep = append(keep, t.order[i+1:]...)
				evicted = true
			default:
				keep = append(keep, k)
				continue
			}
			break
		}
		t.order = keep
		if !evicted {
			return // everything is in flight; admission bounds that
		}
	}
}

// finish records the leader's execution outcome and wakes duplicates.
func (t *idempotency) finish(e *idemEntry, res idemResult) {
	t.mu.Lock()
	e.res = res
	t.mu.Unlock()
	close(e.done)
}

// abandon releases a key whose leader never reached execution (admission
// rejected it). Waiting duplicates get a retryable 503; the key itself
// is forgotten so a later retry becomes a fresh leader.
func (t *idempotency) abandon(e *idemEntry, res idemResult) {
	t.mu.Lock()
	e.res = res
	delete(t.m, e.key)
	t.mu.Unlock()
	close(e.done)
}

// result returns the recorded outcome; call only after e.done is closed.
func (t *idempotency) result(e *idemEntry) idemResult {
	t.mu.Lock()
	defer t.mu.Unlock()
	return e.res
}
