package server_test

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"sma/client"
	"sma/internal/obs"
	"sma/internal/server"
)

// TestIntrospectionOverWire: the introspection catalog streams through the
// ordinary wire protocol — header, live rows, trailer — like any SELECT.
func TestIntrospectionOverWire(t *testing.T) {
	ts := startServer(t, nil, server.Config{})
	ctx := context.Background()
	c := client.New(ts.Base)
	seedSmall(t, c)
	workload := "select K, sum(V) from S group by K"
	for i := 0; i < 2; i++ {
		rows, err := c.Query(ctx, workload)
		if err != nil {
			t.Fatal(err)
		}
		for rows.Next() {
		}
		if err := rows.Err(); err != nil {
			t.Fatal(err)
		}
		rows.Close()
	}

	rows, err := c.Query(ctx, "select * from sma_stat_statements order by total_ms")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	cols := rows.Columns()
	if len(cols) == 0 || cols[0] != "FINGERPRINT" {
		t.Fatalf("columns = %v", cols)
	}
	if got := rows.Strategy(); got != "MemScan" {
		t.Errorf("strategy = %q", got)
	}
	callsIdx, queryIdx, totalIdx := -1, -1, -1
	for i, c := range cols {
		switch c {
		case "CALLS":
			callsIdx = i
		case "QUERY":
			queryIdx = i
		case "TOTAL_MS":
			totalIdx = i
		}
	}
	if callsIdx < 0 || queryIdx < 0 || totalIdx < 0 {
		t.Fatalf("missing catalog columns in %v", cols)
	}
	var n int64
	found := false
	prev := -1.0
	for rows.Next() {
		row := rows.Row()
		n++
		total, err := strconv.ParseFloat(row[totalIdx], 64)
		if err != nil {
			t.Fatalf("total_ms %q: %v", row[totalIdx], err)
		}
		if total < prev {
			t.Errorf("total_ms out of order: %v after %v", total, prev)
		}
		prev = total
		if strings.Contains(row[queryIdx], "sum ( v ) from s") {
			found = true
			if row[callsIdx] != "2" {
				t.Errorf("workload calls = %q, want 2", row[callsIdx])
			}
		}
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n == 0 || !found {
		t.Fatalf("no live workload row among %d statements", n)
	}
	if count, _, _, ok := rows.Trailer(); !ok || count != n {
		t.Errorf("trailer count = %d ok=%v, want %d", count, ok, n)
	}
}

// TestExecWALCountersOverWire: DML responses carry the WAL deltas end to
// end, and `reset stats` executes through the wire like any statement.
func TestExecWALCountersOverWire(t *testing.T) {
	ts := startServer(t, nil, server.Config{})
	ctx := context.Background()
	c := client.New(ts.Base)
	seedSmall(t, c)
	res, err := c.Exec(ctx, "insert into S values (date '2024-03-01', 'C', 9)")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 1 || res.WALBytes <= 0 || res.WALSyncs <= 0 {
		t.Errorf("exec result = %+v", res)
	}

	if _, err := c.Exec(ctx, "reset stats"); err != nil {
		t.Fatal(err)
	}
	rows, err := c.Query(ctx, "select * from sma_stat_tables")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	for rows.Next() {
		t.Errorf("sma_stat_tables after reset: %v", rows.Row())
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsExpositionWhileDegraded: a degraded (corrupt, read-only)
// database keeps /metrics serving a strictly valid exposition.
func TestMetricsExpositionWhileDegraded(t *testing.T) {
	dir := seedCorruptDir(t)
	ts := startServerAt(t, dir, nil, server.Config{})
	ctx := context.Background()

	rep, err := ts.DB.Scrub(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("scrub missed seeded corruption")
	}
	c := client.New(ts.Base)
	err = c.Ready(ctx)
	if se, ok := err.(*client.Error); !ok || !se.IsDegraded() {
		t.Fatalf("Ready = %v, want degraded", err)
	}

	body := fetchMetrics(t, ts.Base)
	if err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("/metrics invalid while degraded: %v\n%s", err, body)
	}
	if !strings.Contains(string(body), "sma_uptime_seconds") {
		t.Errorf("degraded /metrics missing server families:\n%s", body)
	}
}

// TestMetricsExpositionWhileDraining: a draining server (shutdown begun,
// /readyz 503) still serves a valid exposition for the final scrape.
func TestMetricsExpositionWhileDraining(t *testing.T) {
	ts := startServer(t, nil, server.Config{})
	ctx := context.Background()
	c := client.New(ts.Base)
	seedSmall(t, c)
	if err := ts.Srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	err := c.Ready(ctx)
	if se, ok := err.(*client.Error); !ok || !strings.Contains(se.Message, "draining") {
		t.Fatalf("Ready = %v, want draining 503", err)
	}

	body := fetchMetrics(t, ts.Base)
	if err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("/metrics invalid while draining: %v\n%s", err, body)
	}
}
