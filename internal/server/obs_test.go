package server_test

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"

	"sma"
	"sma/client"
	"sma/internal/obs"
	"sma/internal/server"
)

// seedSmall creates a tiny table through the wire.
func seedSmall(t *testing.T, c *client.Client) {
	t.Helper()
	ctx := context.Background()
	if _, err := c.Exec(ctx, "create table S (D date, K char(1), V float64)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(ctx, `insert into S values
		(date '2024-01-01', 'A', 1.5), (date '2024-01-02', 'B', 2),
		(date '2024-02-01', 'A', -3.25), (date '2024-02-02', 'B', 4)`); err != nil {
		t.Fatal(err)
	}
}

// TestQueryTraceFrame requests a traced query over the wire and checks
// the span tree arrives before the trailer, consistent with the
// trailer's scan stats.
func TestQueryTraceFrame(t *testing.T) {
	ts := startServer(t, nil, server.Config{})
	c := client.New(ts.Base)
	seedSmall(t, c)

	rows, err := c.Query(context.Background(),
		"select K, sum(V) as SV from S group by K order by K", client.WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var n int
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if rows.QueryID() == "" {
		t.Error("header carries no query id")
	}
	node := rows.Trace()
	if node == nil {
		t.Fatal("traced query streamed no trace frame")
	}
	if node.Name != "query" {
		t.Fatalf("trace root = %q, want query", node.Name)
	}
	var find func(*client.TraceNode, string) *client.TraceNode
	find = func(tn *client.TraceNode, name string) *client.TraceNode {
		if tn.Name == name {
			return tn
		}
		for _, ch := range tn.Children {
			if hit := find(ch, name); hit != nil {
				return hit
			}
		}
		return nil
	}
	scan := find(node, "scan")
	if scan == nil {
		t.Fatal("trace has no scan span")
	}
	stats, ok := rows.Stats()
	if !ok {
		t.Fatal("trailer carries no stats")
	}
	if int(scan.PagesRead) != stats.PagesRead {
		t.Errorf("trace pages=%d, trailer pages=%d", scan.PagesRead, stats.PagesRead)
	}

	// An untraced query must not stream a trace frame.
	rows2, err := c.Query(context.Background(), "select count(*) from S")
	if err != nil {
		t.Fatal(err)
	}
	defer rows2.Close()
	for rows2.Next() {
	}
	if rows2.Err() != nil {
		t.Fatal(rows2.Err())
	}
	if rows2.Trace() != nil {
		t.Error("untraced query streamed a trace frame")
	}
}

// fetchMetrics GETs /metrics and returns the body.
func fetchMetrics(t *testing.T, base string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestMetricsExposition requires the full /metrics body — server
// registry plus engine registry — to pass the strict exposition parser,
// and the expected families from every layer to be present.
func TestMetricsExposition(t *testing.T) {
	ts := startServer(t, nil, server.Config{})
	c := client.New(ts.Base)
	seedSmall(t, c)
	rows, err := c.Query(context.Background(), "select K, sum(V) from S group by K")
	if err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	rows.Close()

	body := fetchMetrics(t, ts.Base)
	if err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("/metrics is not a valid exposition: %v\n%s", err, body)
	}
	for _, want := range []string{
		// server registry
		"sma_queries_total 1", "sma_server_request_seconds_bucket{route=\"query\",",
		"sma_sessions_max", "sma_uptime_seconds",
		// engine registry, concatenated after
		"sma_engine_queries_total{strategy=", "sma_storage_read_seconds_bucket",
		"sma_pool_hits_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestMetricsWithoutObservability serves a database opened with
// WithoutObservability: the engine contributes nothing, the server
// keeps the pool families alive, and the body still validates.
func TestMetricsWithoutObservability(t *testing.T) {
	ts := startServer(t, []sma.Option{sma.WithoutObservability()}, server.Config{})
	c := client.New(ts.Base)
	seedSmall(t, c)

	body := fetchMetrics(t, ts.Base)
	if err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("/metrics is not a valid exposition: %v\n%s", err, body)
	}
	if strings.Contains(string(body), "sma_engine_") {
		t.Error("engine families present despite WithoutObservability")
	}
	if !strings.Contains(string(body), "sma_pool_hits_total") {
		t.Error("pool families lost without observability")
	}
}

// TestServerTraceDisabledDB checks tracing is per-query state: it works
// against a database running with observability off.
func TestServerTraceDisabledDB(t *testing.T) {
	ts := startServer(t, []sma.Option{sma.WithoutObservability()}, server.Config{})
	c := client.New(ts.Base)
	seedSmall(t, c)
	rows, err := c.Query(context.Background(),
		"select count(*) from S", client.WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	for rows.Next() {
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if rows.Trace() == nil {
		t.Fatal("trace frame missing with observability disabled")
	}
	if rows.QueryID() != "" {
		t.Error("query id minted despite WithoutObservability")
	}
}
