package server_test

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"sma"
	"sma/client"
	"sma/internal/server"
)

// startServerAt serves an existing database directory, for tests that
// seed (or damage) the store before the server opens it.
func startServerAt(t *testing.T, dir string, dbOpts []sma.Option, cfg server.Config) *testServer {
	t.Helper()
	db, err := sma.Open(dir, dbOpts...)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		db.Close()
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	ts := &testServer{DB: db, Srv: srv, HTTP: httpSrv, Base: "http://" + ln.Addr().String()}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		ts.Srv.Shutdown(ctx)
		ts.HTTP.Shutdown(ctx)
		ts.DB.Close()
	})
	return ts
}

// seedCorruptDir builds a small database, closes it cleanly, then flips
// one byte inside page 0 of table S's heap so the next read of that page
// fails its checksum.
func seedCorruptDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	db, err := sma.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("create table S (D date, V float64)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("insert into S values (date '2024-01-01', 1), (date '2024-01-02', 2)"); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	heap := filepath.Join(dir, "s.tbl")
	f, err := os.OpenFile(heap, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], 100); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x40
	if _, err := f.WriteAt(b[:], 100); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestHealthEndpoints walks the full health lifecycle over the wire:
// live+ready on a healthy server, then a scrub finds corruption, the
// database degrades, /readyz drops while /livez stays up, /status reports
// the quarantined page, writes come back 503-degraded — and the client
// recognizes the degraded marker and does not retry.
func TestHealthEndpoints(t *testing.T) {
	dir := seedCorruptDir(t)
	ts := startServerAt(t, dir, nil, server.Config{})
	ctx := context.Background()
	c := client.New(ts.Base)

	if err := c.Alive(ctx); err != nil {
		t.Fatalf("Alive on healthy server: %v", err)
	}
	if err := c.Ready(ctx); err != nil {
		t.Fatalf("Ready on healthy server: %v", err)
	}

	// The scrub walks the heap, trips the checksum, and degrades the DB.
	rep, err := ts.DB.Scrub(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() || len(rep.Corrupt) == 0 {
		t.Fatalf("scrub missed seeded corruption: %+v", rep)
	}

	if err := c.Alive(ctx); err != nil {
		t.Fatalf("Alive while degraded: %v", err)
	}
	err = c.Ready(ctx)
	se, ok := err.(*client.Error)
	if !ok || !se.IsUnavailable() || !se.IsDegraded() {
		t.Fatalf("Ready while degraded: got %v, want degraded 503", err)
	}

	st, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	h := st.Health
	if h.Ready || !h.Degraded || h.DegradedErr == "" {
		t.Fatalf("health: %+v", h)
	}
	if len(h.CorruptPages) == 0 || h.CorruptPages[0].Table != "S" {
		t.Fatalf("corrupt pages: %+v", h.CorruptPages)
	}
	if h.LastScrub == nil || h.LastScrub.Clean || h.LastScrub.CorruptPages == 0 {
		t.Fatalf("last scrub: %+v", h.LastScrub)
	}

	// Writes are rejected with the degraded marker; the default client
	// must fail in one attempt — degraded is not transient, so retrying
	// would only hammer a database that needs an operator.
	errsBefore := st.Totals.Errors
	_, err = c.Exec(ctx, "insert into S values (date '2024-02-01', 3)")
	se, ok = err.(*client.Error)
	if !ok || !se.IsDegraded() {
		t.Fatalf("exec while degraded: got %v, want degraded 503", err)
	}
	st, err = c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Totals.Errors - errsBefore; got != 1 {
		t.Fatalf("degraded exec executed %d times, want 1 (no retries)", got)
	}
}

// TestReadyzDraining: once shutdown begins, /readyz reports 503 draining
// so load balancers stop routing, while /livez stays 200.
func TestReadyzDraining(t *testing.T) {
	ts := startServer(t, nil, server.Config{})
	ctx := context.Background()
	c := client.New(ts.Base)
	if err := c.Ready(ctx); err != nil {
		t.Fatal(err)
	}
	if err := ts.Srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	err := c.Ready(ctx)
	se, ok := err.(*client.Error)
	if !ok || !se.IsUnavailable() || se.IsDegraded() {
		t.Fatalf("Ready while draining: got %v, want plain 503", err)
	}
	if !strings.Contains(se.Message, "draining") {
		t.Fatalf("Ready while draining: message %q", se.Message)
	}
	if err := c.Alive(ctx); err != nil {
		t.Fatalf("Alive while draining: %v", err)
	}
}

// TestDeadlinePropagation: deadline_ms is an absolute instant the server
// enforces; a deadline already in the past fails immediately, and a tight
// one aborts a slow scan partway.
func TestDeadlinePropagation(t *testing.T) {
	ts := slowServer(t, server.Config{})
	c := client.New(ts.Base)

	start := time.Now()
	_, err := drainQuery(c, "select count(*) as C from BIG",
		client.WithDeadline(time.Now().Add(-time.Second)))
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("past deadline: got %v, want deadline exceeded", err)
	}
	if since := time.Since(start); since > 2*time.Second {
		t.Fatalf("past deadline took %v, want immediate failure", since)
	}

	_, err = drainQuery(c, "select count(*) as C from BIG",
		client.WithDeadline(time.Now().Add(50*time.Millisecond)))
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("tight deadline: got %v, want deadline exceeded", err)
	}
}

// TestExecIdempotency: the same key executes once; the duplicate replays
// the recorded response — for successes and for errors alike.
func TestExecIdempotency(t *testing.T) {
	ts := startServer(t, nil, server.Config{})
	ctx := context.Background()
	c := client.New(ts.Base)
	mustExec(t, c, "create table S (D date, V float64)")

	ins := "insert into S values (date '2024-01-01', 1)"
	r1, err := c.Exec(ctx, ins, client.WithIdempotencyKey("pr9-ins"))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Exec(ctx, ins, client.WithIdempotencyKey("pr9-ins"))
	if err != nil {
		t.Fatal(err)
	}
	if r1.RowsAffected != 1 || r2.RowsAffected != 1 {
		t.Fatalf("rows affected %d / %d, want 1 / 1", r1.RowsAffected, r2.RowsAffected)
	}
	rows := collectQuery(t, c, "select count(*) as C from S")
	if fmt.Sprint(rows) != "[[1]]" {
		t.Fatalf("row count after duplicate insert: %v, want [[1]]", rows)
	}

	// Error outcomes replay too: the engine ran the statement once, its
	// failure is as settled as a success.
	_, err1 := c.Exec(ctx, "insert into NOPE values (1)", client.WithIdempotencyKey("pr9-err"))
	_, err2 := c.Exec(ctx, "insert into NOPE values (1)", client.WithIdempotencyKey("pr9-err"))
	if err1 == nil || err2 == nil || err1.Error() != err2.Error() {
		t.Fatalf("error replay mismatch: %v vs %v", err1, err2)
	}

	st, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Totals.IdempotentReplays != 2 {
		t.Fatalf("idempotent replays %d, want 2", st.Totals.IdempotentReplays)
	}
	if st.Totals.Errors != 1 {
		t.Fatalf("errors %d, want 1 (the failed insert executed once)", st.Totals.Errors)
	}
}

// TestExecIdempotencyConcurrent races duplicates of one key: exactly one
// executes, the rest wait on the leader and replay its response.
func TestExecIdempotencyConcurrent(t *testing.T) {
	ts := startServer(t, nil, server.Config{})
	ctx := context.Background()
	c := client.New(ts.Base)
	mustExec(t, c, "create table S (D date, V float64)")

	const dups = 8
	var wg sync.WaitGroup
	results := make([]*client.ExecResult, dups)
	errs := make([]error, dups)
	for i := 0; i < dups; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cc := client.New(ts.Base)
			results[i], errs[i] = cc.Exec(ctx,
				"insert into S values (date '2024-01-01', 1)",
				client.WithIdempotencyKey("pr9-race"))
		}(i)
	}
	wg.Wait()
	for i := 0; i < dups; i++ {
		if errs[i] != nil {
			t.Fatalf("duplicate %d: %v", i, errs[i])
		}
		if results[i].RowsAffected != 1 {
			t.Fatalf("duplicate %d: rows affected %d, want 1", i, results[i].RowsAffected)
		}
	}
	rows := collectQuery(t, c, "select count(*) as C from S")
	if fmt.Sprint(rows) != "[[1]]" {
		t.Fatalf("row count after %d duplicates: %v, want [[1]]", dups, rows)
	}
	st, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Totals.IdempotentReplays != dups-1 {
		t.Fatalf("idempotent replays %d, want %d", st.Totals.IdempotentReplays, dups-1)
	}
}

// TestWatchdogCancelsStuckStatement: a statement that outlives the
// configured deadline is force-cancelled by the background watchdog even
// though its client is still happily connected.
func TestWatchdogCancelsStuckStatement(t *testing.T) {
	ts := slowServer(t, server.Config{StatementDeadline: 100 * time.Millisecond})
	c := client.New(ts.Base)
	_, err := drainQuery(c, "select count(*) as C from BIG")
	if err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("stuck statement: got %v, want watchdog cancellation", err)
	}
	st, serr := c.Status(context.Background())
	if serr != nil {
		t.Fatal(serr)
	}
	if st.Totals.WatchdogCancels < 1 {
		t.Fatalf("watchdog cancels %d, want >= 1", st.Totals.WatchdogCancels)
	}
}

// TestClientRetriesSheddingServer: a shed 503 is transient; the client's
// backoff loop rides it out and the query ultimately succeeds once the
// occupying statement releases the only slot.
func TestClientRetriesSheddingServer(t *testing.T) {
	ts := slowServer(t, server.Config{MaxConcurrent: 1, QueueTimeout: 50 * time.Millisecond})
	ctx := context.Background()
	c := client.New(ts.Base, client.WithRetries(10))

	done := make(chan error, 1)
	go func() {
		_, err := drainQuery(c, "select count(*) as C from BIG")
		done <- err
	}()
	waitFor(t, "slow query to occupy the slot", func() bool {
		st, err := c.Status(ctx)
		return err == nil && st.Admission.Active == 1
	})
	n, err := drainQuery(c, "select count(*) as C from BIG")
	if err != nil {
		t.Fatalf("retried query failed: %v", err)
	}
	if n != 1 {
		t.Fatalf("retried query streamed %d rows, want 1", n)
	}
	if err := <-done; err != nil {
		t.Fatalf("occupying query failed: %v", err)
	}
	st, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Totals.AdmissionTimeouts < 1 {
		t.Fatalf("admission timeouts %d, want >= 1 (a shed must have happened)", st.Totals.AdmissionTimeouts)
	}
}

// TestStatusRacesClose hammers /status from several goroutines while the
// server shuts down and the database closes underneath it. Any response —
// success or error — is acceptable; a panic or a data race (under -race)
// is not.
func TestStatusRacesClose(t *testing.T) {
	ts := startServer(t, nil, server.Config{})
	c := client.New(ts.Base)
	mustExec(t, c, "create table S (D date, V float64)")
	mustExec(t, c, "insert into S values (date '2024-01-01', 1)")
	mustExec(t, c, "define sma m select min(D) from S")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.Base + "/status")
				if err == nil {
					resp.Body.Close()
				}
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := ts.Srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := ts.DB.Close(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // let pollers hit the closed DB
	close(stop)
	wg.Wait()
}
