package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sma"
	"sma/internal/obs"
)

// Config tunes a Server. The zero value picks sensible defaults.
type Config struct {
	// MaxConcurrent bounds the statements executing at once (queries and
	// DML alike). Excess requests queue. Default: 2 × GOMAXPROCS.
	MaxConcurrent int
	// QueueTimeout bounds how long a request waits for an execution slot
	// before a 503. Default 2s.
	QueueTimeout time.Duration
	// DefaultTimeout bounds execution of requests that carry no
	// timeout_ms of their own. 0 (default) means no server-side deadline.
	DefaultTimeout time.Duration
	// FlushEveryRows is the row-frame interval between explicit flushes of
	// a /query stream (the header and trailer always flush). Default 64.
	FlushEveryRows int
	// StatementDeadline arms the stuck-statement watchdog: a background
	// loop force-cancels any statement that has been executing longer
	// than this, even if its client is still connected and it carried no
	// deadline of its own. 0 (default) disables the watchdog.
	StatementDeadline time.Duration
	// IdempotencyCapacity bounds the /exec idempotency-key table; oldest
	// completed entries are evicted first. Default 4096.
	IdempotencyCapacity int
	// Logger receives the server's structured request log: one record per
	// statement with its query id, route, status, duration, and row count.
	// nil discards the records; metrics accumulate either way.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 2 * time.Second
	}
	if c.FlushEveryRows <= 0 {
		c.FlushEveryRows = 64
	}
	if c.IdempotencyCapacity <= 0 {
		c.IdempotencyCapacity = 4096
	}
	return c
}

// Server serves one sma.DB over HTTP. Create with New, mount Handler on
// an http.Server, and call Shutdown before closing the database.
type Server struct {
	db       *sma.DB
	cfg      Config
	start    time.Time
	adm      *admission
	sessions *sessionTable
	idem     *idempotency
	m        metrics
	log      *slog.Logger

	// Stuck-statement watchdog lifecycle (nil channels when disarmed).
	watchdogStop chan struct{}
	watchdogDone chan struct{}
	watchdogOnce sync.Once

	// reg is the server-side metric registry: request totals, admission
	// and session gauges, and per-route latency histograms. /metrics
	// renders it followed by the database's engine-side registry.
	reg        *obs.Registry
	reqSeconds *obs.HistogramVec
}

// New wraps a database in a query server. The Server does not own the DB:
// the caller closes it after Shutdown has drained the in-flight cursors.
func New(db *sma.DB, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		db:       db,
		cfg:      cfg,
		start:    time.Now(),
		adm:      newAdmission(cfg.MaxConcurrent),
		sessions: newSessionTable(),
		idem:     newIdempotency(cfg.IdempotencyCapacity),
		log:      cfg.Logger,
	}
	if s.log == nil {
		s.log = obs.DiscardLogger()
	}
	s.registerMetrics()
	if cfg.StatementDeadline > 0 {
		s.watchdogStop = make(chan struct{})
		s.watchdogDone = make(chan struct{})
		go s.watchdogLoop()
	}
	return s
}

// watchdogLoop periodically force-cancels statements running longer than
// Config.StatementDeadline. The engine aborts a cancelled statement at
// its next bucket or page boundary; DML unwinds atomically.
func (s *Server) watchdogLoop() {
	defer close(s.watchdogDone)
	period := s.cfg.StatementDeadline / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-s.watchdogStop:
			return
		case <-tick.C:
		}
		if n := s.sessions.cancelOlderThan(s.cfg.StatementDeadline); n > 0 {
			s.m.watchdogCancels.Add(int64(n))
			s.log.Warn("watchdog cancelled stuck statements",
				"count", n, "deadline", s.cfg.StatementDeadline)
		}
	}
}

// stopWatchdog halts the watchdog loop; idempotent, safe when disarmed.
func (s *Server) stopWatchdog() {
	if s.watchdogStop == nil {
		return
	}
	s.watchdogOnce.Do(func() { close(s.watchdogStop) })
	<-s.watchdogDone
}

// registerMetrics builds the server registry. The request totals stay in
// atomics (the /status snapshot reads them too) and are exported as
// CounterFuncs; gauges sample the admission gate at render time.
func (s *Server) registerMetrics() {
	r := obs.NewRegistry()
	s.reg = r
	fromAtomic := func(name, help string, v *atomic.Int64) {
		r.CounterFunc(name, help, func() float64 { return float64(v.Load()) })
	}
	fromAtomic("sma_queries_total", "Queries admitted for execution.", &s.m.queries)
	fromAtomic("sma_execs_total", "DDL/DML statements admitted for execution.", &s.m.execs)
	fromAtomic("sma_errors_total", "Statements that failed after admission.", &s.m.errors)
	fromAtomic("sma_queries_cancelled_total", "Statements aborted by client disconnect or deadline.", &s.m.cancelled)
	fromAtomic("sma_rows_streamed_total", "Result rows written to /query streams.", &s.m.rowsStreamed)
	fromAtomic("sma_admission_timeouts_total", "Requests that timed out waiting for a slot.", &s.m.admissionTimeouts)
	fromAtomic("sma_admission_rejected_total", "Requests rejected because the server was draining.", &s.m.admissionRejected)
	fromAtomic("sma_watchdog_cancels_total", "Stuck statements force-cancelled by the watchdog.", &s.m.watchdogCancels)
	fromAtomic("sma_exec_idempotent_replays_total", "Keyed /exec duplicates answered from the recorded response.", &s.m.idemReplays)
	r.GaugeFunc("sma_sessions_active", "Statements currently executing.", func() float64 {
		active, _, _ := s.adm.snapshot()
		return float64(active)
	})
	r.GaugeFunc("sma_sessions_queued", "Requests waiting for an execution slot.", func() float64 {
		_, queued, _ := s.adm.snapshot()
		return float64(queued)
	})
	r.GaugeFunc("sma_sessions_max", "Admission-control concurrency bound.", func() float64 {
		return float64(s.cfg.MaxConcurrent)
	})
	r.GaugeFunc("sma_uptime_seconds", "Seconds since the server started.", func() float64 {
		return time.Since(s.start).Seconds()
	})
	s.reqSeconds = r.HistogramVec("sma_server_request_seconds",
		"HTTP request latency by route.", obs.DefSecondsBuckets(), "route")
	if !s.db.Observable() {
		// The engine registry normally owns the buffer pool families; with
		// observability disabled it renders nothing, so keep the pool
		// picture available from the server's own registry.
		poolFunc := func(name, help string, get func(sma.PoolStats) int64) {
			r.CounterFunc(name, help, func() float64 { return float64(get(s.db.PoolStats())) })
		}
		poolFunc("sma_pool_hits_total", "Buffer pool hits across all tables.",
			func(p sma.PoolStats) int64 { return p.Hits })
		poolFunc("sma_pool_misses_total", "Buffer pool misses across all tables.",
			func(p sma.PoolStats) int64 { return p.Misses })
		poolFunc("sma_pool_evictions_total", "Buffer pool evictions across all tables.",
			func(p sma.PoolStats) int64 { return p.Evictions })
		poolFunc("sma_pool_prefetched_total", "Pages read ahead by the prefetchers.",
			func(p sma.PoolStats) int64 { return p.Prefetched })
		poolFunc("sma_pool_prefetch_hits_total", "Demand fetches served by prefetched frames.",
			func(p sma.PoolStats) int64 { return p.PrefetchHits })
	}
}

// Handler returns the server's route table. Every route is wrapped in
// the per-route latency observer.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.timed("query", s.handleQuery))
	mux.HandleFunc("POST /exec", s.timed("exec", s.handleExec))
	mux.HandleFunc("GET /status", s.timed("status", s.handleStatus))
	mux.HandleFunc("GET /metrics", s.timed("metrics", s.handleMetrics))
	mux.HandleFunc("GET /livez", s.handleLivez)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return mux
}

// handleLivez answers 200 while the process can serve HTTP at all — the
// restart-me probe. It stays 200 even degraded or draining: restarting
// would not help either condition.
func (s *Server) handleLivez(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("ok\n"))
}

// handleReadyz answers 200 while the server accepts new statements — the
// route-traffic-here probe. Readiness drops while draining (Shutdown
// began) and while the database is degraded to read-only after detected
// corruption. Recovery replay happens inside sma.Open before this
// handler can exist, so during replay probes fail at the connection
// level, which is the correct "not ready yet" signal.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	_, _, draining := s.adm.snapshot()
	degErr := s.db.Degraded()
	if !draining && degErr == nil {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
		return
	}
	body := ErrorResponse{Degraded: degErr != nil}
	switch {
	case draining:
		body.Error = "draining"
	default:
		body.Error = degErr.Error()
	}
	s.writeJSON(w, http.StatusServiceUnavailable, &body)
}

// timed observes a route's request latency into sma_server_request_seconds.
func (s *Server) timed(route string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.reqSeconds.With(route)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		hist.ObserveDuration(time.Since(start))
	}
}

// Shutdown stops admitting new statements and blocks until every
// in-flight statement finished and released its cursor (the graceful
// drain contract). If ctx expires first, the remaining sessions'
// contexts are cancelled — the engine aborts them at the next bucket or
// page boundary — and Shutdown still waits for them to unwind before
// returning ctx's error, so the caller can always Close the database
// immediately after Shutdown returns.
func (s *Server) Shutdown(ctx context.Context) error {
	defer s.stopWatchdog()
	s.adm.beginDrain()
	done := make(chan struct{})
	go func() {
		s.adm.wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.sessions.cancelAll()
		<-done
		return ctx.Err()
	}
}

// admit runs the admission gate, answering 503 with Retry-After when the
// request cannot get a slot. ok=false means the response was written.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) bool {
	err := s.adm.acquire(r.Context(), s.cfg.QueueTimeout)
	switch {
	case err == nil:
		return true
	case errors.Is(err, ErrQueueTimeout):
		s.m.admissionTimeouts.Add(1)
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrDraining):
		s.m.admissionRejected.Add(1)
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusServiceUnavailable, err)
	default: // client went away while queued
		s.m.cancelled.Add(1)
	}
	return false
}

// statementContext derives the execution context of one statement: the
// request context (cancelled by client disconnect) plus the per-request
// or server-default timeout, plus the request's absolute deadline_ms if
// any (the earlier of the two wins — context.WithDeadline never extends
// a parent), registered in the session table so the watchdog and a
// forced shutdown can cancel it.
func (s *Server) statementContext(r *http.Request, timeoutMillis, deadlineMillis int64, kind, sql string) (context.Context, *session, context.CancelFunc) {
	var ctx context.Context
	var cancel context.CancelFunc
	d := time.Duration(timeoutMillis) * time.Millisecond
	if d <= 0 {
		d = s.cfg.DefaultTimeout
	}
	if d > 0 {
		ctx, cancel = context.WithTimeout(r.Context(), d)
	} else {
		ctx, cancel = context.WithCancel(r.Context())
	}
	if deadlineMillis > 0 {
		var cancelAbs context.CancelFunc
		ctx, cancelAbs = context.WithDeadline(ctx, time.UnixMilli(deadlineMillis))
		inner := cancel
		cancel = func() { cancelAbs(); inner() }
	}
	sess := s.sessions.add(kind, sql, cancel)
	return ctx, sess, cancel
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	req, err := DecodeQueryRequest(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if !s.admit(w, r) {
		return
	}
	defer s.adm.release()
	s.m.queries.Add(1)

	ctx, sess, cancel := s.statementContext(r, req.TimeoutMillis, req.DeadlineMillis, "query", req.SQL)
	defer cancel()
	defer s.sessions.remove(sess)

	var opts []sma.QueryOption
	if req.DOP > 0 {
		opts = append(opts, sma.WithQueryParallelism(req.DOP))
	}
	if req.BatchSize != nil {
		opts = append(opts, sma.WithQueryBatchSize(*req.BatchSize))
	}
	if req.Trace {
		opts = append(opts, sma.WithQueryTrace())
	}
	start := time.Now()
	rows, err := s.db.QueryContext(ctx, req.SQL, opts...)
	if err != nil {
		s.log.Warn("query rejected", "err", err)
		s.writeError(w, statusFor(err), err)
		return
	}
	defer rows.Close()
	count := s.streamRows(ctx, w, rows, req.Trace)
	s.log.Debug("query", "qid", rows.QueryID(), "strategy", rows.Strategy(),
		"dur", time.Since(start), "rows", count, "err", rows.Err())
}

// streamRows writes the NDJSON frame stream of one query, returning the
// row count for the request log. Once the header frame is out the HTTP
// status is committed, so later failures travel as in-band error frames.
func (s *Server) streamRows(ctx context.Context, w http.ResponseWriter, rows *sma.Rows, traced bool) int64 {
	start := time.Now()
	w.Header().Set("Content-Type", "application/x-ndjson")
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		bw.Flush()
		if flusher != nil {
			flusher.Flush()
		}
	}

	types := rows.ColumnTypes()
	header := &QueryHeader{
		Columns:     rows.Columns(),
		Types:       make([]string, len(types)),
		Strategy:    rows.Strategy(),
		Parallelism: rows.Parallelism(),
		QueryID:     rows.QueryID(),
	}
	for i, t := range types {
		header.Types[i] = t.String()
	}
	enc.Encode(Frame{Header: header})
	flush()

	var count int64
	for rows.Next() {
		vals, err := rows.RowStrings()
		if err != nil {
			s.m.rowsStreamed.Add(count)
			s.streamError(bw, flush, err)
			return count
		}
		enc.Encode(Frame{Row: vals})
		count++
		if count%int64(s.cfg.FlushEveryRows) == 0 {
			flush()
			// The engine checks the context at page boundaries, but rows
			// already resident never hit one: surface a client disconnect
			// or deadline here as an in-band error, never as a truncated
			// stream under a success trailer.
			if err := ctx.Err(); err != nil {
				s.m.rowsStreamed.Add(count)
				s.streamError(bw, flush, err)
				return count
			}
		}
	}
	s.m.rowsStreamed.Add(count)
	if err := rows.Err(); err != nil {
		s.streamError(bw, flush, err)
		return count
	}
	if traced {
		if node := rows.Trace(); node != nil {
			enc.Encode(Frame{Trace: node})
		}
	}
	trailer := &QueryTrailer{RowCount: count, ElapsedMicros: time.Since(start).Microseconds()}
	if qs, ok := rows.Stats(); ok {
		trailer.Stats = &WireQueryStats{
			QualifyingBuckets:    qs.QualifyingBuckets,
			DisqualifyingBuckets: qs.DisqualifyingBuckets,
			AmbivalentBuckets:    qs.AmbivalentBuckets,
			PagesRead:            qs.PagesRead,
			Batches:              qs.Batches,
			PagesPrefetched:      qs.PagesPrefetched,
			PrefetchHits:         qs.PrefetchHits,
		}
	}
	enc.Encode(Frame{Trailer: trailer})
	flush()
	return count
}

// streamError terminates a committed stream with an in-band error frame.
func (s *Server) streamError(bw *bufio.Writer, flush func(), err error) {
	if isCancel(err) {
		s.m.cancelled.Add(1)
	} else {
		s.m.errors.Add(1)
	}
	json.NewEncoder(bw).Encode(Frame{Error: err.Error()})
	flush()
}

func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	req, err := DecodeExecRequest(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	// Idempotency: duplicates of a keyed statement never reach the
	// engine — they wait for the first attempt and replay its recorded
	// response, so a client may retry an Exec it lost the answer to
	// without risking a second execution.
	var entry *idemEntry
	if req.IdempotencyKey != "" {
		var leader bool
		entry, leader = s.idem.begin(req.IdempotencyKey)
		if !leader {
			s.replayExec(w, r, entry)
			return
		}
	}
	if !s.admit(w, r) {
		if entry != nil {
			// Never executed: release the key so a retry gets a fresh run.
			s.idem.abandon(entry, idemResult{
				status:  http.StatusServiceUnavailable,
				errBody: &ErrorResponse{Error: "statement was shed before execution; retry"},
			})
		}
		return
	}
	defer s.adm.release()
	s.m.execs.Add(1)

	ctx, sess, cancel := s.statementContext(r, req.TimeoutMillis, req.DeadlineMillis, "exec", req.SQL)
	defer cancel()
	defer s.sessions.remove(sess)

	start := time.Now()
	res, err := s.db.ExecContext(ctx, req.SQL)
	if err != nil {
		status, body := statusFor(err), s.errorBody(err)
		if entry != nil {
			s.idem.finish(entry, idemResult{status: status, errBody: body})
		}
		s.writeJSON(w, status, body)
		return
	}
	resp := &ExecResponse{
		Kind:          res.Kind,
		Table:         res.Table,
		RowsAffected:  res.RowsAffected,
		ElapsedMicros: time.Since(start).Microseconds(),
		WALBytes:      res.WALBytes,
		WALSyncs:      res.WALSyncs,
	}
	if res.SMAName != "" {
		resp.SMA = &SMAResult{
			Name:    res.SMAName,
			Buckets: res.SMABuckets,
			Files:   res.SMAFiles,
			Pages:   res.SMAPages,
		}
	}
	if entry != nil {
		s.idem.finish(entry, idemResult{status: http.StatusOK, resp: resp})
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// replayExec answers a duplicate keyed /exec from the recorded outcome
// of the first attempt, waiting for it if still in flight.
func (s *Server) replayExec(w http.ResponseWriter, r *http.Request, entry *idemEntry) {
	select {
	case <-entry.done:
	case <-r.Context().Done():
		s.m.cancelled.Add(1)
		return
	}
	s.m.idemReplays.Add(1)
	res := s.idem.result(entry)
	if res.errBody != nil {
		s.writeJSON(w, res.status, res.errBody)
		return
	}
	s.writeJSON(w, res.status, res.resp)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	active, queued, draining := s.adm.snapshot()
	health := HealthStatus{Ready: !draining, Draining: draining}
	if degErr := s.db.Degraded(); degErr != nil {
		health.Ready = false
		health.Degraded = true
		health.DegradedErr = degErr.Error()
		health.CorruptPages = s.db.CorruptPages()
	}
	if rep := s.db.LastScrub(); rep != nil {
		health.LastScrub = &ScrubStatus{
			StartUnixMillis: rep.Start.UnixMilli(),
			DurationMicros:  rep.Duration.Microseconds(),
			PagesScanned:    rep.PagesScanned,
			SMAsChecked:     rep.SMAsChecked,
			CorruptPages:    len(rep.Corrupt),
			Errors:          len(rep.Errors),
			Clean:           rep.Clean(),
		}
	}
	resp := &StatusResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Health:        health,
		Tables:        []TableStatus{},
		Admission: AdmissionStatus{
			Active:             active,
			Queued:             queued,
			MaxConcurrent:      s.cfg.MaxConcurrent,
			QueueTimeoutMillis: s.cfg.QueueTimeout.Milliseconds(),
			Draining:           draining,
		},
		Sessions: s.sessions.list(),
		Totals:   s.m.totals(),
	}
	for _, ti := range s.db.Tables() {
		ts := TableStatus{
			Name:        ti.Name,
			Rows:        ti.Rows,
			Pages:       ti.Pages,
			Buckets:     ti.Buckets,
			BucketPages: ti.BucketPages,
		}
		for _, c := range ti.Columns {
			cs := ColumnStatus{Name: c.Name, Type: c.Type.String()}
			if c.Type == sma.TypeChar {
				cs.Len = c.Len
			}
			ts.Columns = append(ts.Columns, cs)
		}
		for _, sm := range ti.SMAs {
			ts.SMAs = append(ts.SMAs, SMAStatus{
				Name: sm.Name, SQL: sm.SQL,
				Files: sm.Files, Pages: sm.Pages, Buckets: sm.Buckets,
			})
		}
		resp.Tables = append(resp.Tables, ts)
	}
	ps := s.db.PoolStats()
	resp.Pool = PoolStatus{
		Hits:         ps.Hits,
		Misses:       ps.Misses,
		Evictions:    ps.Evictions,
		Prefetched:   ps.Prefetched,
		PrefetchHits: ps.PrefetchHits,
	}
	ws, rs := s.db.WALStats(), s.db.RecoveryStats()
	resp.WAL = WALStatus{
		Policy:              ws.Policy,
		SizeBytes:           ws.Size,
		Commits:             ws.Commits,
		Syncs:               ws.Syncs,
		GroupedWaits:        ws.GroupedWaits,
		PageImages:          ws.PageImages,
		Checkpoints:         ws.Checkpoints,
		Recovered:           rs.Performed,
		RecoveredStatements: rs.Statements,
		RecoveredOps:        rs.Ops,
		SMAsRebuilt:         rs.SMAsRebuilt,
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleMetrics renders the server registry followed by the database's
// engine-side registry (query strategies, grading outcomes, storage
// latency, parallel skew — nothing with observability disabled). The
// family name spaces are disjoint, so the concatenation is itself a
// valid exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	bw := bufio.NewWriter(w)
	if err := s.reg.WritePrometheus(bw); err != nil {
		return // client went away mid-write; nothing to answer
	}
	if err := s.db.WritePrometheus(bw); err != nil {
		return
	}
	bw.Flush()
}

// writeJSON answers a JSON body with the given status.
func (s *Server) writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

// errorBody counts a failure and builds its JSON body, marking degraded
// failures so clients know the 503 is not retryable.
func (s *Server) errorBody(err error) *ErrorResponse {
	if isCancel(err) {
		s.m.cancelled.Add(1)
	} else {
		s.m.errors.Add(1)
	}
	return &ErrorResponse{Error: err.Error(), Degraded: errors.Is(err, sma.ErrDegraded)}
}

// writeError answers the JSON error body, counting it.
func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	s.writeJSON(w, status, s.errorBody(err))
}

// statusFor maps a pre-stream execution error to an HTTP status.
func statusFor(err error) int {
	switch {
	case errors.Is(err, sma.ErrDegraded):
		// Unavailable, but marked degraded in the body: unlike admission
		// 503s this does not clear on its own, so clients must not retry.
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusBadRequest // client is gone; status is moot
	default:
		return http.StatusBadRequest
	}
}

// isCancel reports whether err is a context cancellation or deadline.
func isCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
