package server_test

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"sma"
	"sma/client"
	"sma/internal/server"
)

// testServer is a live smaserverd-shaped server: a real TCP listener and
// http.Server around a Server, as cmd/smaserverd wires them.
type testServer struct {
	DB   *sma.DB
	Srv  *server.Server
	HTTP *http.Server
	Base string
}

// startServer opens a fresh database and serves it on a loopback port.
// Cleanup drains the server, closes the listener, and closes the DB.
func startServer(t *testing.T, dbOpts []sma.Option, cfg server.Config) *testServer {
	t.Helper()
	db, err := sma.Open(t.TempDir(), dbOpts...)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		db.Close()
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	ts := &testServer{DB: db, Srv: srv, HTTP: httpSrv, Base: "http://" + ln.Addr().String()}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		ts.Srv.Shutdown(ctx)
		ts.HTTP.Shutdown(ctx)
		ts.DB.Close()
	})
	return ts
}

// waitFor polls cond until true or the deadline, failing the test after.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestQueryRoundTrip drives DDL, DML, and a streamed aggregate through
// the wire and requires the client's rendered rows to byte-match an
// in-process sma.Collect of the same query.
func TestQueryRoundTrip(t *testing.T) {
	ts := startServer(t, nil, server.Config{})
	ctx := context.Background()
	c := client.New(ts.Base)

	if _, err := c.Exec(ctx, "create table S (D date, K char(1), V float64)"); err != nil {
		t.Fatal(err)
	}
	res, err := c.Exec(ctx, `insert into S values
		(date '2024-01-01', 'A', 1.5), (date '2024-01-02', 'B', 2),
		(date '2024-02-01', 'A', -3.25), (date '2024-02-02', 'B', 4)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 4 {
		t.Fatalf("insert affected %d rows, want 4", res.RowsAffected)
	}
	if sres, err := c.Exec(ctx, "define sma g select sum(V) from S group by K"); err != nil {
		t.Fatal(err)
	} else if sres.SMA == nil || sres.SMA.Name != "g" {
		t.Fatalf("define sma response missing SMA result: %+v", sres)
	}

	q := "select K, sum(V) as SV, count(*) as C from S group by K order by K"
	rows, err := c.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if got, want := rows.Columns(), []string{"K", "SV", "C"}; fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("columns %v, want %v", got, want)
	}
	if got, want := rows.Types(), []string{"char", "float64", "float64"}; fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("types %v, want %v", got, want)
	}
	var wire [][]string
	for rows.Next() {
		wire = append(wire, append([]string(nil), rows.Row()...))
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	n, _, stats, ok := rows.Trailer()
	if !ok || n != int64(len(wire)) {
		t.Fatalf("trailer row_count %d ok=%v, streamed %d", n, ok, len(wire))
	}
	if stats == nil {
		t.Fatal("trailer missing stats")
	}

	direct, err := ts.DB.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sma.Collect(direct)
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != len(want.Rows) {
		t.Fatalf("wire %d rows, direct %d", len(wire), len(want.Rows))
	}
	for i := range wire {
		if fmt.Sprint(wire[i]) != fmt.Sprint(want.Rows[i]) {
			t.Fatalf("row %d: wire %v, direct %v", i, wire[i], want.Rows[i])
		}
	}
	if rows.Strategy() != want.Strategy {
		t.Fatalf("wire strategy %q, direct %q", rows.Strategy(), want.Strategy)
	}
}

// TestBadRequests maps malformed bodies and SQL to 400 with a JSON error.
func TestBadRequests(t *testing.T) {
	ts := startServer(t, nil, server.Config{})
	for _, body := range []string{
		``, `{`, `{"sql": ""}`, `{"sql": "select 1", "bogus": true}`,
		`{"sql": "select 1"} trailing`, `{"sql": "select 1", "dop": -1}`,
		`{"sql": "select 1", "timeout_ms": -5}`,
		`{"sql": "select 1", "batch_size": 2000000000}`,
	} {
		resp, err := http.Post(ts.Base+"/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	// Well-formed request, bad SQL: still 400, through the client.
	c := client.New(ts.Base)
	_, err := c.Query(context.Background(), "select from nowhere")
	se, ok := err.(*client.Error)
	if !ok || se.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad SQL: got %v, want *client.Error with 400", err)
	}
	// Query-only knobs on Exec are rejected client-side, not dropped.
	if _, err := c.Exec(context.Background(), "delete from X", client.WithDOP(4)); err == nil ||
		!strings.Contains(err.Error(), "do not apply") {
		t.Fatalf("Exec with WithDOP: got %v, want rejection", err)
	}
}

// TestStatusAndMetrics checks the catalog/pool/session snapshot and the
// Prometheus exposition after known traffic.
func TestStatusAndMetrics(t *testing.T) {
	ts := startServer(t, nil, server.Config{MaxConcurrent: 3})
	ctx := context.Background()
	c := client.New(ts.Base)
	mustExec(t, c, "create table S (D date, V float64)")
	mustExec(t, c, "insert into S values (date '2024-01-01', 1), (date '2024-01-02', 2)")
	mustExec(t, c, "define sma m select min(D) from S")
	if _, err := drainQuery(c, "select count(*) as C from S"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(ctx, "insert into NOPE values (1)"); err == nil {
		t.Fatal("exec on unknown table succeeded")
	}

	st, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Tables) != 1 || st.Tables[0].Name != "S" {
		t.Fatalf("status tables: %+v", st.Tables)
	}
	tb := st.Tables[0]
	if tb.Rows != 2 || len(tb.Columns) != 2 || len(tb.SMAs) != 1 || tb.SMAs[0].Name != "m" {
		t.Fatalf("table status: %+v", tb)
	}
	if st.Admission.MaxConcurrent != 3 || st.Admission.Draining {
		t.Fatalf("admission status: %+v", st.Admission)
	}
	if st.Totals.Queries != 1 || st.Totals.Execs != 4 || st.Totals.Errors != 1 || st.Totals.RowsStreamed != 1 {
		t.Fatalf("totals: %+v", st.Totals)
	}
	if st.Pool.Hits+st.Pool.Misses == 0 {
		t.Fatalf("pool saw no traffic: %+v", st.Pool)
	}

	resp, err := http.Get(ts.Base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	resp.Body.Close()
	text := string(buf[:n])
	for _, want := range []string{
		"# TYPE sma_queries_total counter", "sma_queries_total 1",
		"sma_execs_total 4", "sma_errors_total 1", "sma_rows_streamed_total 1",
		"# TYPE sma_sessions_active gauge", "sma_sessions_max 3",
		"sma_pool_hits_total", "sma_uptime_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
}

// slowServer returns a server whose full scans take hundreds of
// milliseconds: simulated per-page read latency, prefetch off, and a
// table spanning a few hundred pages.
func slowServer(t *testing.T, cfg server.Config) *testServer {
	t.Helper()
	ts := startServer(t, []sma.Option{
		sma.WithReadLatency(2 * time.Millisecond),
		sma.WithPrefetchWindow(-1),
		sma.WithPoolPages(8), // tiny pool: every scan re-reads from "disk"
	}, cfg)
	c := client.New(ts.Base)
	mustExec(t, c, "create table BIG (D date, PAD char(400))")
	var vals []string
	for i := 0; i < 2000; i++ {
		vals = append(vals, fmt.Sprintf("(date '2024-%02d-%02d', 'x')", i/168%12+1, i/6%28+1))
	}
	mustExec(t, c, "insert into BIG values "+strings.Join(vals, ", "))
	return ts
}

// TestAdmissionQueueTimeout saturates a MaxConcurrent=1 server with a
// slow scan and requires the next request to shed with 503 within the
// queue timeout, counted in admission metrics.
func TestAdmissionQueueTimeout(t *testing.T) {
	ts := slowServer(t, server.Config{MaxConcurrent: 1, QueueTimeout: 50 * time.Millisecond})
	// Retries off: this test asserts the raw shed, not the retry loop.
	c := client.New(ts.Base, client.WithRetries(1))
	ctx := context.Background()

	done := make(chan error, 1)
	go func() {
		_, err := drainQuery(c, "select count(*) as C from BIG")
		done <- err
	}()
	waitFor(t, "slow query to occupy the slot", func() bool {
		st, err := c.Status(ctx)
		return err == nil && st.Admission.Active == 1
	})
	_, err := drainQuery(c, "select count(*) as C from BIG")
	se, ok := err.(*client.Error)
	if !ok || !se.IsUnavailable() {
		t.Fatalf("second query: got %v, want 503", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("slow query failed: %v", err)
	}
	st, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Totals.AdmissionTimeouts != 1 {
		t.Fatalf("admission timeouts %d, want 1", st.Totals.AdmissionTimeouts)
	}
}

// TestGracefulShutdownDrains proves the drain contract: Shutdown lets the
// in-flight stream finish to its trailer, rejects new statements with
// 503, and returns only once the cursor is released.
func TestGracefulShutdownDrains(t *testing.T) {
	ts := slowServer(t, server.Config{MaxConcurrent: 2, QueueTimeout: time.Second})
	// Retries off: the drain 503 is the assertion, not something to ride out.
	c := client.New(ts.Base, client.WithRetries(1))
	ctx := context.Background()

	type qres struct {
		rows int64
		err  error
	}
	done := make(chan qres, 1)
	go func() {
		n, err := drainQuery(c, "select count(*) as C from BIG")
		done <- qres{n, err}
	}()
	waitFor(t, "query in flight", func() bool {
		st, err := c.Status(ctx)
		return err == nil && st.Admission.Active == 1
	})

	shutdownDone := make(chan error, 1)
	go func() {
		sctx, cancel := context.WithTimeout(ctx, 30*time.Second)
		defer cancel()
		shutdownDone <- ts.Srv.Shutdown(sctx)
	}()
	waitFor(t, "draining to be visible", func() bool {
		st, err := c.Status(ctx)
		return err == nil && st.Admission.Draining
	})

	// New work is rejected while the old query keeps streaming.
	if _, err := c.Exec(ctx, "insert into BIG values (date '2024-01-01', 'y')"); err == nil {
		t.Fatal("exec admitted during drain")
	} else if se, ok := err.(*client.Error); !ok || !se.IsUnavailable() {
		t.Fatalf("exec during drain: got %v, want 503", err)
	}

	r := <-done
	if r.err != nil {
		t.Fatalf("in-flight query failed during drain: %v", r.err)
	}
	if r.rows != 1 {
		t.Fatalf("in-flight query streamed %d rows, want 1", r.rows)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// The cursor is released: the write lock is immediately available.
	if _, err := ts.DB.Exec("delete from BIG"); err != nil {
		t.Fatal(err)
	}
}

// TestShutdownForcedCancel proves the timeout path: when the drain budget
// is already spent, Shutdown cancels in-flight query contexts, the stream
// ends with an in-band error frame, and Shutdown still waits for the
// sessions to unwind.
func TestShutdownForcedCancel(t *testing.T) {
	ts := slowServer(t, server.Config{MaxConcurrent: 2, QueueTimeout: time.Second})
	c := client.New(ts.Base)
	ctx := context.Background()

	done := make(chan error, 1)
	go func() {
		_, err := drainQuery(c, "select count(*) as C from BIG")
		done <- err
	}()
	waitFor(t, "query in flight", func() bool {
		st, err := c.Status(ctx)
		return err == nil && st.Admission.Active == 1
	})

	expired, cancel := context.WithCancel(ctx)
	cancel() // already-expired drain budget forces immediate cancellation
	if err := ts.Srv.Shutdown(expired); err != context.Canceled {
		t.Fatalf("Shutdown: %v, want context.Canceled", err)
	}
	err := <-done
	if err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("cancelled query returned %v, want in-band context canceled", err)
	}
	if _, err := ts.DB.Exec("delete from BIG"); err != nil {
		t.Fatal(err)
	}
}

// TestPerQueryKnobs exercises dop/batch_size/timeout_ms through the wire:
// serial vs parallel and batch vs row must return identical bytes, and a
// tiny deadline must abort the scan with an error.
func TestPerQueryKnobs(t *testing.T) {
	ts := startServer(t, []sma.Option{sma.WithParallelism(4)}, server.Config{})
	c := client.New(ts.Base)
	mustExec(t, c, "create table S (D date, K char(1), V float64)")
	var vals []string
	for i := 0; i < 3000; i++ {
		vals = append(vals, fmt.Sprintf("(date '2024-%02d-%02d', '%c', %d.5)",
			i/250+1, i/90%28+1, 'A'+i%5, i%100))
	}
	mustExec(t, c, "insert into S values "+strings.Join(vals, ", "))

	q := "select K, sum(V) as SV from S group by K order by K"
	base := collectQuery(t, c, q)
	for name, opts := range map[string][]client.QueryOption{
		"serial":  {client.WithDOP(1)},
		"dop4":    {client.WithDOP(4)},
		"rowmode": {client.WithBatchSize(-1)},
		"batch16": {client.WithBatchSize(16)},
	} {
		if got := collectQuery(t, c, q, opts...); fmt.Sprint(got) != fmt.Sprint(base) {
			t.Errorf("%s: %v != base %v", name, got, base)
		}
	}

	// The deadline knob: a slow server-side scan must exceed 1ms.
	slow := slowServer(t, server.Config{})
	sc := client.New(slow.Base)
	_, err := drainQuery(sc, "select count(*) as C from BIG", client.WithTimeout(time.Millisecond))
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("timeout_ms query: got %v, want deadline exceeded", err)
	}
}

// TestConcurrentMixedLoad is the integration shape CI runs under -race:
// N concurrent wire clients interleaving DML and aggregate/projection
// queries against shared tables while /status polls, then a clean drain.
func TestConcurrentMixedLoad(t *testing.T) {
	clients := 32
	if testing.Short() {
		clients = 8
	}
	dop := runtime.NumCPU()
	if dop < 2 {
		dop = 2
	}
	ts := startServer(t, []sma.Option{sma.WithParallelism(dop)},
		server.Config{MaxConcurrent: 8, QueueTimeout: 30 * time.Second})
	c := client.New(ts.Base)
	mustExec(t, c, "create table S (D date, K char(1), V float64)")
	mustExec(t, c, "define sma g select sum(V) from S group by K")

	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			cc := client.New(ts.Base)
			for op := 0; op < 25; op++ {
				var err error
				switch (ci + op) % 4 {
				case 0:
					_, err = cc.Exec(context.Background(), fmt.Sprintf(
						"insert into S values (date '2024-%02d-01', '%c', %d.5)",
						op%12+1, 'A'+ci%5, ci))
				case 1:
					_, err = drainQuery(cc, "select K, sum(V) as SV from S group by K order by K")
				case 2:
					_, err = drainQuery(cc, "select count(*) as C from S where D <= date '2024-06-01'")
				default:
					_, err = drainQuery(cc, "select D, V from S limit 20")
				}
				if err != nil {
					errc <- fmt.Errorf("client %d op %d: %w", ci, op, err)
					return
				}
			}
		}(ci)
	}
	pollDone := make(chan struct{})
	go func() { // a monitoring poller riding along
		defer close(pollDone)
		for i := 0; i < 20; i++ {
			c.Status(context.Background())
			time.Sleep(2 * time.Millisecond)
		}
	}()
	wg.Wait()
	<-pollDone
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	st, err := c.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantExecs := int64(2) // + the insert clients
	for ci := 0; ci < clients; ci++ {
		for op := 0; op < 25; op++ {
			if (ci+op)%4 == 0 {
				wantExecs++
			}
		}
	}
	if st.Totals.Execs != wantExecs || st.Totals.Errors != 0 {
		t.Fatalf("totals %+v, want %d execs, 0 errors", st.Totals, wantExecs)
	}
}

// --- helpers --------------------------------------------------------------

func mustExec(t *testing.T, c *client.Client, sql string) {
	t.Helper()
	if _, err := c.Exec(context.Background(), sql); err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
}

// drainQuery runs a query and consumes the stream, returning the row count.
func drainQuery(c *client.Client, sql string, opts ...client.QueryOption) (int64, error) {
	rows, err := c.Query(context.Background(), sql, opts...)
	if err != nil {
		return 0, err
	}
	defer rows.Close()
	var n int64
	for rows.Next() {
		n++
	}
	return n, rows.Err()
}

// collectQuery drains a query into rendered rows.
func collectQuery(t *testing.T, c *client.Client, sql string, opts ...client.QueryOption) [][]string {
	t.Helper()
	rows, err := c.Query(context.Background(), sql, opts...)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	defer rows.Close()
	var out [][]string
	for rows.Next() {
		out = append(out, append([]string(nil), rows.Row()...))
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return out
}
