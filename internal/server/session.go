package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Admission errors, mapped to 503 by the handlers.
var (
	// ErrQueueTimeout reports that no execution slot freed up within the
	// admission queue timeout.
	ErrQueueTimeout = errors.New("server: admission queue timeout")
	// ErrDraining reports that the server is shutting down and admits no
	// new statements.
	ErrDraining = errors.New("server: draining, not admitting new statements")
)

// admission is a bounded concurrent-statement semaphore with a queue
// timeout. At most cap(slots) statements execute at once; excess requests
// wait in line up to the configured timeout, then fail fast with a 503 so
// load sheds at the door instead of piling onto the engine's locks.
type admission struct {
	slots  chan struct{}
	queued atomic.Int64

	mu       sync.Mutex // guards draining vs. inflight.Add
	draining bool
	inflight sync.WaitGroup
}

func newAdmission(maxConcurrent int) *admission {
	return &admission{slots: make(chan struct{}, maxConcurrent)}
}

// acquire claims an execution slot, waiting at most timeout. It fails
// with ErrQueueTimeout when the line is too slow, ErrDraining when the
// server is shutting down, or the context's error when the client gave up
// while queued. On success the caller must release().
func (a *admission) acquire(ctx context.Context, timeout time.Duration) error {
	a.mu.Lock()
	draining := a.draining
	a.mu.Unlock()
	if draining {
		return ErrDraining
	}
	a.queued.Add(1)
	defer a.queued.Add(-1)
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
	case <-timer.C:
		return ErrQueueTimeout
	case <-ctx.Done():
		return ctx.Err()
	}
	// The slot is held; re-check draining under the lock so inflight.Add
	// can never race a Wait that drain() already started.
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		<-a.slots
		return ErrDraining
	}
	a.inflight.Add(1)
	a.mu.Unlock()
	return nil
}

// release returns a slot claimed by acquire.
func (a *admission) release() {
	<-a.slots
	a.inflight.Done()
}

// beginDrain stops admitting new statements. Idempotent.
func (a *admission) beginDrain() {
	a.mu.Lock()
	a.draining = true
	a.mu.Unlock()
}

// wait blocks until every admitted statement released its slot.
func (a *admission) wait() { a.inflight.Wait() }

// snapshot reports (active, queued, draining) for /status and /metrics.
func (a *admission) snapshot() (int, int, bool) {
	a.mu.Lock()
	draining := a.draining
	a.mu.Unlock()
	return len(a.slots), int(a.queued.Load()), draining
}

// session is one admitted in-flight statement.
type session struct {
	id       int64
	kind     string // "query" or "exec"
	sql      string
	start    time.Time
	cancel   context.CancelFunc
	watchdog bool // already cancelled by the watchdog (count once)
}

// sessionTable tracks in-flight statements so /status can list them and a
// timed-out shutdown can cancel their contexts.
type sessionTable struct {
	mu   sync.Mutex
	next int64
	m    map[int64]*session
}

func newSessionTable() *sessionTable {
	return &sessionTable{m: make(map[int64]*session)}
}

// add registers a statement and returns its session.
func (st *sessionTable) add(kind, sql string, cancel context.CancelFunc) *session {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.next++
	s := &session{id: st.next, kind: kind, sql: sql, start: time.Now(), cancel: cancel}
	st.m[s.id] = s
	return s
}

// remove deregisters a finished statement.
func (st *sessionTable) remove(s *session) {
	st.mu.Lock()
	delete(st.m, s.id)
	st.mu.Unlock()
}

// cancelAll cancels the context of every live session (forced shutdown).
func (st *sessionTable) cancelAll() {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, s := range st.m {
		s.cancel()
	}
}

// cancelOlderThan cancels every live session that has been running longer
// than d and reports how many it cancelled. Each session is counted once:
// the watchdog ticks repeatedly but a statement only gets one cancel.
func (st *sessionTable) cancelOlderThan(d time.Duration) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for _, s := range st.m {
		if !s.watchdog && time.Since(s.start) > d {
			s.cancel()
			s.watchdog = true
			n++
		}
	}
	return n
}

// list snapshots the live sessions in id order for /status.
func (st *sessionTable) list() []SessionStatus {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]SessionStatus, 0, len(st.m))
	for _, s := range st.m {
		out = append(out, SessionStatus{
			ID:            s.id,
			Kind:          s.kind,
			SQL:           s.sql,
			ElapsedMicros: time.Since(s.start).Microseconds(),
		})
	}
	sortSessions(out)
	return out
}

func sortSessions(s []SessionStatus) {
	for i := 1; i < len(s); i++ { // tiny n: insertion sort, no sort import
		for j := i; j > 0 && s[j].ID < s[j-1].ID; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// metrics holds the server's lifetime counters (atomics: bumped on hot
// paths, snapshotted lock-free by /metrics and /status).
type metrics struct {
	queries           atomic.Int64
	execs             atomic.Int64
	errors            atomic.Int64
	cancelled         atomic.Int64
	rowsStreamed      atomic.Int64
	admissionTimeouts atomic.Int64
	admissionRejected atomic.Int64
	watchdogCancels   atomic.Int64
	idemReplays       atomic.Int64
}

func (m *metrics) totals() TotalsStatus {
	return TotalsStatus{
		Queries:           m.queries.Load(),
		Execs:             m.execs.Load(),
		Errors:            m.errors.Load(),
		Cancelled:         m.cancelled.Load(),
		RowsStreamed:      m.rowsStreamed.Load(),
		AdmissionTimeouts: m.admissionTimeouts.Load(),
		AdmissionRejected: m.admissionRejected.Load(),
		WatchdogCancels:   m.watchdogCancels.Load(),
		IdempotentReplays: m.idemReplays.Load(),
	}
}
