// Package server turns the embedded sma engine into a served system: a
// concurrent SQL-over-HTTP query server with admission control, session
// tracking, live metrics, and graceful shutdown.
//
// Wire protocol (JSON over HTTP):
//
//	POST /query  {"sql": "...", "dop": 4, "batch_size": 1024, "timeout_ms": 5000, "trace": true}
//	  → 200, Content-Type application/x-ndjson: one JSON frame per line —
//	    first a header frame {"header": {columns, types, strategy, parallelism,
//	    query_id}}, then a row frame {"row": ["...", ...]} per result row
//	    (values are the engine's rendered display strings, byte-identical to
//	    sma.Collect), then — when "trace" was requested — a trace frame
//	    {"trace": {...}} carrying the query's span tree, finally a trailer
//	    frame {"trailer": {row_count, elapsed_us, stats}}. A failure
//	    mid-stream replaces the trailer with {"error": "..."}.
//	POST /exec   {"sql": "...", "timeout_ms": 5000, "idempotency_key": "..."}
//	  → 200 {"kind", "table", "rows_affected", "sma"?, "elapsed_us"}
//	GET  /status → catalog, pool, session, admission, and health snapshot
//	GET  /metrics → Prometheus text exposition
//	GET  /livez  → 200 while the process serves requests at all
//	GET  /readyz → 200 when accepting statements; 503 while draining or
//	  degraded (during recovery replay the listener is not up yet, so
//	  probes fail at the connection level)
//
// Both statement routes accept "deadline_ms", an absolute wall-clock
// deadline in Unix milliseconds that propagates into the statement's
// context — the knob retries use so a statement never outlives its
// original deadline no matter how many attempts carried it. "timeout_ms"
// is the equivalent relative form; when both are set the earlier wins.
//
// An /exec carrying an "idempotency_key" is executed at most once: while
// the first attempt is in flight, duplicates wait for it; afterwards they
// receive a replay of its recorded response without touching the engine.
// Keys fall out of the table LRU-style (see Config.IdempotencyCapacity),
// and do not survive a server restart.
//
// Requests rejected before execution answer a JSON error body with an HTTP
// status: 400 (malformed request or SQL), 503 (admission queue timeout,
// server draining — both with Retry-After — or database degraded, marked
// "degraded": true in the body), 504 (per-query deadline exceeded).
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"sma"
)

// Request limits: a decoded request is rejected before execution when it
// exceeds them, so a malformed or hostile body cannot balloon memory or
// spawn absurd parallelism.
const (
	// MaxSQLBytes caps the statement text length.
	MaxSQLBytes = 1 << 20
	// MaxBodyBytes caps the HTTP body read for /query and /exec.
	MaxBodyBytes = MaxSQLBytes + 4096
	// MaxDOP caps the per-request degree of parallelism.
	MaxDOP = 512
	// MaxBatchSize caps the per-request tuples-per-batch target: batch
	// buffers are sized batch×record up front, so an unbounded value
	// would let one request allocate the server to death. Any negative
	// value selects the row-at-a-time fallback.
	MaxBatchSize = 1 << 16
	// MaxTimeoutMillis caps the per-request deadline (24h).
	MaxTimeoutMillis = 24 * 60 * 60 * 1000
	// MaxIdempotencyKeyBytes caps the /exec idempotency key length.
	MaxIdempotencyKeyBytes = 128
)

// QueryRequest is the body of POST /query.
type QueryRequest struct {
	SQL string `json:"sql"`
	// DOP overrides the server's degree of intra-query parallelism for
	// this query (0 keeps the server default, 1 forces serial).
	DOP int `json:"dop,omitempty"`
	// BatchSize overrides the tuples-per-batch target (absent keeps the
	// server default, 0 the engine default size, negative runs the legacy
	// row-at-a-time iterators).
	BatchSize *int `json:"batch_size,omitempty"`
	// TimeoutMillis bounds execution; past it the query fails with 504 (or
	// an in-stream error frame once streaming began). 0 means no deadline.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
	// DeadlineMillis is an absolute wall-clock deadline (Unix
	// milliseconds) that propagates into the statement context. Unlike
	// timeout_ms it survives retries unchanged: every attempt races the
	// same instant. 0 means none; combined with timeout_ms the earlier
	// deadline wins.
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
	// Trace asks the engine to record a per-operator execution trace; the
	// finished span tree streams back as a trace frame before the trailer.
	Trace bool `json:"trace,omitempty"`
}

// ExecRequest is the body of POST /exec.
type ExecRequest struct {
	SQL           string `json:"sql"`
	TimeoutMillis int64  `json:"timeout_ms,omitempty"`
	// DeadlineMillis is the absolute form of timeout_ms; see QueryRequest.
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
	// IdempotencyKey makes the statement safely retryable: the server
	// executes at most one statement per key and replays the recorded
	// response to duplicates. Empty disables deduplication.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
}

// DecodeQueryRequest strictly decodes and validates a /query body:
// unknown fields, trailing data, empty or oversized SQL, and out-of-range
// knobs are errors.
func DecodeQueryRequest(r io.Reader) (*QueryRequest, error) {
	var req QueryRequest
	if err := decodeStrict(r, &req); err != nil {
		return nil, err
	}
	if err := validateSQL(req.SQL); err != nil {
		return nil, err
	}
	if req.DOP < 0 || req.DOP > MaxDOP {
		return nil, fmt.Errorf("dop %d out of range [0, %d]", req.DOP, MaxDOP)
	}
	if req.BatchSize != nil && *req.BatchSize > MaxBatchSize {
		return nil, fmt.Errorf("batch_size %d exceeds %d", *req.BatchSize, MaxBatchSize)
	}
	if err := validateTimeout(req.TimeoutMillis); err != nil {
		return nil, err
	}
	if req.DeadlineMillis < 0 {
		return nil, fmt.Errorf("deadline_ms %d is negative", req.DeadlineMillis)
	}
	return &req, nil
}

// DecodeExecRequest strictly decodes and validates an /exec body.
func DecodeExecRequest(r io.Reader) (*ExecRequest, error) {
	var req ExecRequest
	if err := decodeStrict(r, &req); err != nil {
		return nil, err
	}
	if err := validateSQL(req.SQL); err != nil {
		return nil, err
	}
	if err := validateTimeout(req.TimeoutMillis); err != nil {
		return nil, err
	}
	if req.DeadlineMillis < 0 {
		return nil, fmt.Errorf("deadline_ms %d is negative", req.DeadlineMillis)
	}
	if len(req.IdempotencyKey) > MaxIdempotencyKeyBytes {
		return nil, fmt.Errorf("idempotency_key length %d exceeds %d bytes",
			len(req.IdempotencyKey), MaxIdempotencyKeyBytes)
	}
	return &req, nil
}

// decodeStrict decodes exactly one JSON object, rejecting unknown fields
// and trailing content.
func decodeStrict(r io.Reader, dst any) error {
	dec := json.NewDecoder(io.LimitReader(r, MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("malformed request body: %w", err)
	}
	if dec.More() {
		return errors.New("malformed request body: trailing data after request object")
	}
	return nil
}

func validateSQL(sql string) error {
	if sql == "" {
		return errors.New(`request is missing "sql"`)
	}
	if len(sql) > MaxSQLBytes {
		return fmt.Errorf("sql length %d exceeds %d bytes", len(sql), MaxSQLBytes)
	}
	return nil
}

func validateTimeout(ms int64) error {
	if ms < 0 || ms > MaxTimeoutMillis {
		return fmt.Errorf("timeout_ms %d out of range [0, %d]", ms, MaxTimeoutMillis)
	}
	return nil
}

// QueryHeader is the first frame of a /query response stream.
type QueryHeader struct {
	Columns []string `json:"columns"`
	// Types names each column's value type ("int32", "int64", "float64",
	// "date", "char"); aggregate columns are "float64".
	Types []string `json:"types"`
	// Strategy is the physical plan ("SMA_GAggr", "SMA_Scan+GAggr", ...).
	Strategy string `json:"strategy"`
	// Parallelism is the degree the plan executes with (1 = serial).
	Parallelism int `json:"parallelism"`
	// QueryID is the engine-assigned query id ("" when the database runs
	// without observability); it matches the id in the server's request
	// log and the engine's query log.
	QueryID string `json:"query_id,omitempty"`
}

// WireQueryStats mirrors sma.QueryStats on the wire.
type WireQueryStats struct {
	QualifyingBuckets    int `json:"qualifying_buckets"`
	DisqualifyingBuckets int `json:"disqualifying_buckets"`
	AmbivalentBuckets    int `json:"ambivalent_buckets"`
	PagesRead            int `json:"pages_read"`
	Batches              int `json:"batches"`
	PagesPrefetched      int `json:"pages_prefetched"`
	PrefetchHits         int `json:"prefetch_hits"`
}

// QueryTrailer is the final frame of a successful /query stream.
type QueryTrailer struct {
	RowCount      int64           `json:"row_count"`
	ElapsedMicros int64           `json:"elapsed_us"`
	Stats         *WireQueryStats `json:"stats,omitempty"`
}

// Frame is one NDJSON line of a /query response: exactly one field is
// set. Error frames terminate the stream in place of the trailer.
type Frame struct {
	Header  *QueryHeader   `json:"header,omitempty"`
	Row     []string       `json:"row,omitempty"`
	Trace   *sma.TraceNode `json:"trace,omitempty"`
	Trailer *QueryTrailer  `json:"trailer,omitempty"`
	Error   string         `json:"error,omitempty"`
}

// SMAResult describes the SMA built by a "define sma" statement.
type SMAResult struct {
	Name    string `json:"name"`
	Buckets int    `json:"buckets"`
	Files   int    `json:"files"`
	Pages   int64  `json:"pages"`
}

// ExecResponse is the body of a successful /exec.
type ExecResponse struct {
	Kind          string     `json:"kind"`
	Table         string     `json:"table,omitempty"`
	RowsAffected  int64      `json:"rows_affected"`
	SMA           *SMAResult `json:"sma,omitempty"`
	ElapsedMicros int64      `json:"elapsed_us"`
	WALBytes      int64      `json:"wal_bytes,omitempty"`
	WALSyncs      int64      `json:"wal_syncs,omitempty"`
}

// ErrorResponse is the JSON body of every non-200 answer. Degraded marks
// failures caused by the database's degraded read-only mode: the
// condition is persistent (a human must repair or restore), so clients
// must not treat the 503 as retryable.
type ErrorResponse struct {
	Error    string `json:"error"`
	Degraded bool   `json:"degraded,omitempty"`
}

// ColumnStatus describes one column in /status.
type ColumnStatus struct {
	Name string `json:"name"`
	Type string `json:"type"`
	Len  int    `json:"len,omitempty"`
}

// SMAStatus describes one SMA in /status.
type SMAStatus struct {
	Name    string `json:"name"`
	SQL     string `json:"sql"`
	Files   int    `json:"files"`
	Pages   int64  `json:"pages"`
	Buckets int    `json:"buckets"`
}

// TableStatus describes one table in /status.
type TableStatus struct {
	Name        string         `json:"name"`
	Columns     []ColumnStatus `json:"columns"`
	Rows        int64          `json:"rows"`
	Pages       int64          `json:"pages"`
	Buckets     int            `json:"buckets"`
	BucketPages int            `json:"bucket_pages"`
	SMAs        []SMAStatus    `json:"smas,omitempty"`
}

// PoolStatus is the database-wide buffer pool picture in /status.
type PoolStatus struct {
	Hits         int64 `json:"hits"`
	Misses       int64 `json:"misses"`
	Evictions    int64 `json:"evictions"`
	Prefetched   int64 `json:"prefetched"`
	PrefetchHits int64 `json:"prefetch_hits"`
}

// WALStatus reports redo-log and crash-recovery state in /status.
type WALStatus struct {
	Policy       string `json:"policy"`
	SizeBytes    int64  `json:"size_bytes"`
	Commits      uint64 `json:"commits"`
	Syncs        uint64 `json:"syncs"`
	GroupedWaits uint64 `json:"grouped_waits"`
	PageImages   uint64 `json:"page_images"`
	Checkpoints  uint64 `json:"checkpoints"`
	// Recovered is true when the last Open replayed the redo log after an
	// unclean shutdown; the replayed counts describe what it restored.
	Recovered           bool  `json:"recovered"`
	RecoveredStatements int64 `json:"recovered_statements,omitempty"`
	RecoveredOps        int64 `json:"recovered_ops,omitempty"`
	SMAsRebuilt         int   `json:"smas_rebuilt,omitempty"`
}

// SessionStatus describes one in-flight statement in /status.
type SessionStatus struct {
	ID            int64  `json:"id"`
	Kind          string `json:"kind"` // "query" or "exec"
	SQL           string `json:"sql"`
	ElapsedMicros int64  `json:"elapsed_us"`
}

// AdmissionStatus reports the admission-control state in /status.
type AdmissionStatus struct {
	Active             int   `json:"active"`
	Queued             int   `json:"queued"`
	MaxConcurrent      int   `json:"max_concurrent"`
	QueueTimeoutMillis int64 `json:"queue_timeout_ms"`
	Draining           bool  `json:"draining"`
}

// TotalsStatus reports the lifetime counters in /status.
type TotalsStatus struct {
	Queries           int64 `json:"queries"`
	Execs             int64 `json:"execs"`
	Errors            int64 `json:"errors"`
	Cancelled         int64 `json:"cancelled"`
	RowsStreamed      int64 `json:"rows_streamed"`
	AdmissionTimeouts int64 `json:"admission_timeouts"`
	AdmissionRejected int64 `json:"admission_rejected"`
	WatchdogCancels   int64 `json:"watchdog_cancels"`
	IdempotentReplays int64 `json:"idempotent_replays"`
}

// ScrubStatus summarizes the most recent scrub pass in /status.
type ScrubStatus struct {
	StartUnixMillis int64 `json:"start_unix_ms"`
	DurationMicros  int64 `json:"duration_us"`
	PagesScanned    int64 `json:"pages_scanned"`
	SMAsChecked     int   `json:"smas_checked"`
	CorruptPages    int   `json:"corrupt_pages"`
	Errors          int   `json:"errors"`
	Clean           bool  `json:"clean"`
}

// HealthStatus reports serving health in /status: Ready mirrors /readyz,
// Degraded the database's read-only corruption mode.
type HealthStatus struct {
	Ready        bool              `json:"ready"`
	Draining     bool              `json:"draining"`
	Degraded     bool              `json:"degraded"`
	DegradedErr  string            `json:"degraded_err,omitempty"`
	CorruptPages []sma.CorruptPage `json:"corrupt_pages,omitempty"`
	LastScrub    *ScrubStatus      `json:"last_scrub,omitempty"`
}

// StatusResponse is the body of GET /status.
type StatusResponse struct {
	UptimeSeconds float64         `json:"uptime_seconds"`
	Health        HealthStatus    `json:"health"`
	Tables        []TableStatus   `json:"tables"`
	Pool          PoolStatus      `json:"pool"`
	WAL           WALStatus       `json:"wal"`
	Admission     AdmissionStatus `json:"admission"`
	Sessions      []SessionStatus `json:"sessions"`
	Totals        TotalsStatus    `json:"totals"`
}
