package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Advice is one advisor recommendation.
type Advice struct {
	Action        string // "add" or "drop"
	Table         string
	Target        string // column (add) or "sma <name>" (drop)
	Filters       int64  // observed queries filtering the target column
	EstPagesSaved int64
	MaintOps      int64
	Reason        string
	Suggestion    string // DDL to apply the recommendation
}

// adviseMinFilters is how often a column must appear in predicates before
// the advisor proposes an SMA for it; one-off queries don't justify the
// maintenance cost the paper's economics are about.
const adviseMinFilters = 2

// Advise joins the observed workload against the defined SMAs and
// recommends definitions to add (columns frequently filtered whose queries
// read pages without pruning any) and drop (SMAs consulted but never
// disqualifying a bucket). Estimated pages saved for an "add" is the pages
// those queries read — an upper bound reached when every bucket outside
// the predicate's range disqualifies, the paper's sorted "optimal case".
func Advise(c *Collector, catalog []CatalogSMA) []Advice {
	if c == nil {
		return nil
	}
	// Columns already covered by a selection-capable SMA, split by which
	// vector exists: a min vector prunes <=/< predicates, a max vector
	// prunes >=/>, a count SMA grouped by the column prunes equality from
	// either side. Sum vectors cannot disqualify buckets and do not count.
	type coverage struct{ min, max bool }
	covered := make(map[string]coverage, len(catalog))
	for _, def := range catalog {
		if def.Column == "" {
			continue
		}
		key := def.Table + "." + strings.ToUpper(def.Column)
		cv := covered[key]
		switch def.Kind {
		case "min":
			cv.min = true
		case "max":
			cv.max = true
		case "count":
			cv.min, cv.max = true, true
		default:
			continue
		}
		covered[key] = cv
	}

	var out []Advice
	for _, ts := range c.Tables() {
		for _, cs := range ts.Cols {
			if cs.Filters < adviseMinFilters || cs.PagesRead == 0 || cs.PagesPruned > 0 {
				continue
			}
			// Suggest the vector the workload's operators can prune
			// with; when the dominant side is already defined, fall back
			// to the other side if anything needs it.
			cv := covered[ts.Table+"."+cs.Column]
			agg := "min"
			if cs.NeedMax > cs.NeedMin {
				agg = "max"
			}
			if (agg == "min" && cv.min) || (agg == "max" && cv.max) {
				switch {
				case agg == "min" && cs.NeedMax > 0 && !cv.max:
					agg = "max"
				case agg == "max" && cs.NeedMin > 0 && !cv.min:
					agg = "min"
				default:
					continue
				}
			}
			col := strings.ToLower(cs.Column)
			out = append(out, Advice{
				Action:        "add",
				Table:         ts.Table,
				Target:        cs.Column,
				Filters:       cs.Filters,
				EstPagesSaved: cs.PagesRead,
				Reason: fmt.Sprintf("%d queries filter on %s.%s but no %s SMA covers it; %d pages read, 0 pruned",
					cs.Filters, ts.Table, cs.Column, agg, cs.PagesRead),
				Suggestion: fmt.Sprintf("define sma %s_%s select %s(%s) from %s",
					col, agg, agg, cs.Column, ts.Table),
			})
		}
	}

	for _, s := range c.SMAs() {
		if s.Consulted == 0 || s.Disqualified > 0 {
			continue
		}
		out = append(out, Advice{
			Action:   "drop",
			Table:    s.Table,
			Target:   "sma " + s.Name,
			MaintOps: s.MaintOps,
			Reason: fmt.Sprintf("consulted by %d plans, never disqualified a bucket (%d maintenance ops paid)",
				s.Consulted, s.MaintOps),
			Suggestion: fmt.Sprintf("drop sma %s on %s", s.Name, s.Table),
		})
	}

	sort.Slice(out, func(i, j int) bool {
		if out[i].Action != out[j].Action {
			return out[i].Action < out[j].Action // "add" before "drop"
		}
		if out[i].EstPagesSaved != out[j].EstPagesSaved {
			return out[i].EstPagesSaved > out[j].EstPagesSaved
		}
		return out[i].Table+out[i].Target < out[j].Table+out[j].Target
	})
	return out
}
