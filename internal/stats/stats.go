// Package stats is the engine's workload-introspection store: per-statement
// accumulators keyed by query fingerprint, per-SMA effectiveness counters,
// and per-table scan/DML totals, in the spirit of pg_stat_statements.
//
// Everything here is in-memory and process-local: counters start at zero on
// Open, are zeroed again by `reset stats`, and are never persisted. The
// collector sits on the hot path of every statement, so the statement map
// is sharded by fingerprint and each record touch takes one short
// shard-local critical section.
//
// The package depends only on internal/tuple (for the virtual-table
// snapshots); the engine and obs layers feed it, never the reverse.
package stats

import (
	"sort"
	"sync"
	"time"
)

// latRing is the number of recent latencies kept per statement for the
// p50/p99 estimates. Quantiles are exact over this window, not the full
// history.
const latRing = 128

// Statement accumulates one fingerprint's history. All fields are guarded
// by the owning shard's mutex.
type Statement struct {
	Fingerprint uint64
	Text        string // normalized statement text (literals as "?")

	Calls  int64
	Errors int64

	TotalNS int64
	MinNS   int64
	MaxNS   int64

	Rows         int64 // rows returned by queries
	RowsAffected int64 // rows written by DML

	PagesRead   int64
	PagesPruned int64

	// Bucket grades from the planner, the paper's §3.1 vocabulary.
	Qualify    int64
	Disqualify int64
	Ambivalent int64

	Strategy string // last strategy chosen
	DOP      int    // last degree of parallelism

	WALBytes int64
	WALSyncs int64

	lat  [latRing]int64 // ring of recent latencies, nanoseconds
	latN int64          // total latencies ever recorded
}

// quantilesNS returns the p50 and p99 of the retained latency window.
func (s *Statement) quantilesNS() (p50, p99 int64) {
	n := int(min(s.latN, latRing))
	if n == 0 {
		return 0, 0
	}
	w := make([]int64, n)
	copy(w, s.lat[:n])
	sort.Slice(w, func(i, j int) bool { return w[i] < w[j] })
	return w[n/2], w[(n*99)/100]
}

// SMAStats counts one SMA's observed usefulness.
type SMAStats struct {
	Table  string
	Name   string
	Column string
	Kind   string

	Consulted    int64 // queries whose planning consulted this SMA
	Disqualified int64 // buckets this SMA alone disqualified
	PagesSaved   int64 // heap pages those disqualifications skipped
	MaintOps     int64 // maintenance hook invocations (per row per DML)
}

// ColStats tracks how often a table column appears in WHERE predicates and
// what those queries cost; the advisor's raw material.
type ColStats struct {
	Column      string
	Filters     int64 // queries with a predicate atom on this column
	PagesRead   int64 // heap pages read by those queries
	PagesPruned int64 // heap pages those queries skipped via SMAs

	// Which SMA vector the observed operators could disqualify buckets
	// with: col <= v prunes through a min vector (bucket min > v), col >=
	// v through a max vector (bucket max < v), equality through either.
	// The advisor uses the dominant side to suggest the vector that will
	// actually help the workload.
	NeedMin int64
	NeedMax int64
}

// FilterCol is one predicate column observation inside a QueryRecord.
type FilterCol struct {
	Col     string
	NeedMin bool
	NeedMax bool
}

// TableStats accumulates per-table scan and DML totals.
type TableStats struct {
	Table string

	Scans       int64
	RowsRead    int64
	PagesRead   int64
	PagesPruned int64

	Inserts      int64
	Updates      int64
	Deletes      int64
	RowsAffected int64
	WALBytes     int64

	cols map[string]*ColStats
}

// Activity is one in-flight statement.
type Activity struct {
	ID          int64
	Kind        string // "query" or "exec"
	Fingerprint uint64
	SQL         string
	Start       time.Time
}

// QueryRecord is everything the engine knows about one finished query.
type QueryRecord struct {
	Fingerprint uint64
	Norm        string
	Table       string // empty for virtual tables
	Strategy    string
	DOP         int
	Dur         time.Duration
	Rows        int64
	Err         bool

	PagesRead   int64
	PagesPruned int64
	Qualify     int64
	Disqualify  int64
	Ambivalent  int64

	FilterCols []FilterCol // predicate columns with operator direction, for the advisor
}

// ExecRecord is everything the engine knows about one finished DML/DDL
// statement.
type ExecRecord struct {
	Fingerprint  uint64
	Norm         string
	Kind         string // "insert", "update", "delete", "create table", ...
	Table        string
	Dur          time.Duration
	RowsAffected int64
	WALBytes     int64
	WALSyncs     int64
	Err          bool
}

const shardCount = 16

type shard struct {
	mu    sync.Mutex
	stmts map[uint64]*Statement
}

// Collector is the process-wide stats store. The zero value is not usable;
// call New. All methods are safe for concurrent use and safe on a nil
// receiver (no-ops / empty results), so callers need no obs-enabled checks.
type Collector struct {
	shards [shardCount]shard

	mu     sync.RWMutex // guards smas and tables maps
	smas   map[string]*SMAStats
	tables map[string]*TableStats

	actMu  sync.Mutex
	acts   map[int64]*Activity
	actSeq int64
}

// New returns an empty collector.
func New() *Collector {
	c := &Collector{
		smas:   make(map[string]*SMAStats),
		tables: make(map[string]*TableStats),
		acts:   make(map[int64]*Activity),
	}
	for i := range c.shards {
		c.shards[i].stmts = make(map[uint64]*Statement)
	}
	return c
}

// Reset zeroes every accumulator. In-flight activities survive — they
// describe live statements, not history.
func (c *Collector) Reset() {
	if c == nil {
		return
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.stmts = make(map[uint64]*Statement)
		s.mu.Unlock()
	}
	c.mu.Lock()
	c.smas = make(map[string]*SMAStats)
	c.tables = make(map[string]*TableStats)
	c.mu.Unlock()
}

func (c *Collector) stmt(fp uint64, norm string) (*shard, *Statement) {
	sh := &c.shards[fp%shardCount]
	sh.mu.Lock()
	st := sh.stmts[fp]
	if st == nil {
		st = &Statement{Fingerprint: fp, Text: norm, MinNS: int64(^uint64(0) >> 1)}
		sh.stmts[fp] = st
	}
	return sh, st
}

func (st *Statement) observe(dur time.Duration, isErr bool) {
	ns := dur.Nanoseconds()
	st.Calls++
	if isErr {
		st.Errors++
	}
	st.TotalNS += ns
	if ns < st.MinNS {
		st.MinNS = ns
	}
	if ns > st.MaxNS {
		st.MaxNS = ns
	}
	st.lat[st.latN%latRing] = ns
	st.latN++
}

// RecordQuery folds one finished query into the statement, table, and
// column accumulators.
func (c *Collector) RecordQuery(r QueryRecord) {
	if c == nil {
		return
	}
	sh, st := c.stmt(r.Fingerprint, r.Norm)
	st.observe(r.Dur, r.Err)
	st.Rows += r.Rows
	st.PagesRead += r.PagesRead
	st.PagesPruned += r.PagesPruned
	st.Qualify += r.Qualify
	st.Disqualify += r.Disqualify
	st.Ambivalent += r.Ambivalent
	st.Strategy = r.Strategy
	st.DOP = r.DOP
	sh.mu.Unlock()

	if r.Table == "" {
		return
	}
	c.mu.Lock()
	ts := c.tableLocked(r.Table)
	ts.Scans++
	ts.RowsRead += r.Rows
	ts.PagesRead += r.PagesRead
	ts.PagesPruned += r.PagesPruned
	for _, fc := range r.FilterCols {
		cs := ts.cols[fc.Col]
		if cs == nil {
			cs = &ColStats{Column: fc.Col}
			ts.cols[fc.Col] = cs
		}
		cs.Filters++
		cs.PagesRead += r.PagesRead
		cs.PagesPruned += r.PagesPruned
		if fc.NeedMin {
			cs.NeedMin++
		}
		if fc.NeedMax {
			cs.NeedMax++
		}
	}
	c.mu.Unlock()
}

// RecordExec folds one finished DML/DDL statement into the accumulators.
func (c *Collector) RecordExec(r ExecRecord) {
	if c == nil {
		return
	}
	sh, st := c.stmt(r.Fingerprint, r.Norm)
	st.observe(r.Dur, r.Err)
	st.RowsAffected += r.RowsAffected
	st.WALBytes += r.WALBytes
	st.WALSyncs += r.WALSyncs
	st.Strategy = r.Kind
	sh.mu.Unlock()

	if r.Table == "" {
		return
	}
	c.mu.Lock()
	ts := c.tableLocked(r.Table)
	switch r.Kind {
	case "insert":
		ts.Inserts++
	case "update":
		ts.Updates++
	case "delete":
		ts.Deletes++
	}
	ts.RowsAffected += r.RowsAffected
	ts.WALBytes += r.WALBytes
	c.mu.Unlock()
}

func (c *Collector) tableLocked(name string) *TableStats {
	ts := c.tables[name]
	if ts == nil {
		ts = &TableStats{Table: name, cols: make(map[string]*ColStats)}
		c.tables[name] = ts
	}
	return ts
}

func smaKey(table, name string) string { return table + "\x00" + name }

func (c *Collector) sma(table, name, column, kind string) *SMAStats {
	key := smaKey(table, name)
	c.mu.RLock()
	s := c.smas[key]
	c.mu.RUnlock()
	if s != nil {
		return s
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if s = c.smas[key]; s == nil {
		s = &SMAStats{Table: table, Name: name, Column: column, Kind: kind}
		c.smas[key] = s
	}
	return s
}

// RecordSMA notes that planning consulted an SMA and what it bought:
// buckets it alone would disqualify and the heap pages that pruning saved
// (zero when the plan fell back to a full scan).
func (c *Collector) RecordSMA(table, name, column, kind string, disqualified, pagesSaved int64) {
	if c == nil {
		return
	}
	s := c.sma(table, name, column, kind)
	c.mu.Lock()
	s.Consulted++
	s.Disqualified += disqualified
	s.PagesSaved += pagesSaved
	c.mu.Unlock()
}

// RecordMaint counts one SMA maintenance-hook invocation. Called per row
// per SMA on the DML path, so it must stay cheap.
func (c *Collector) RecordMaint(table, name string) {
	if c == nil {
		return
	}
	key := smaKey(table, name)
	c.mu.RLock()
	s := c.smas[key]
	c.mu.RUnlock()
	if s == nil {
		s = c.sma(table, name, "", "")
	}
	c.mu.Lock()
	s.MaintOps++
	c.mu.Unlock()
}

// BeginActivity registers an in-flight statement and returns a token for
// EndActivity.
func (c *Collector) BeginActivity(kind, sql string, fp uint64) int64 {
	if c == nil {
		return 0
	}
	c.actMu.Lock()
	c.actSeq++
	id := c.actSeq
	c.acts[id] = &Activity{ID: id, Kind: kind, Fingerprint: fp, SQL: sql, Start: time.Now()}
	c.actMu.Unlock()
	return id
}

// EndActivity removes a statement registered by BeginActivity.
func (c *Collector) EndActivity(id int64) {
	if c == nil || id == 0 {
		return
	}
	c.actMu.Lock()
	delete(c.acts, id)
	c.actMu.Unlock()
}

// Statements snapshots every statement accumulator, most expensive first.
func (c *Collector) Statements() []Statement {
	if c == nil {
		return nil
	}
	var out []Statement
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for _, st := range sh.stmts {
			out = append(out, *st)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalNS != out[j].TotalNS {
			return out[i].TotalNS > out[j].TotalNS
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out
}

// Quantiles exposes the p50/p99 window of a snapshot entry.
func (s *Statement) Quantiles() (p50, p99 time.Duration) {
	a, b := s.quantilesNS()
	return time.Duration(a), time.Duration(b)
}

// SMAs snapshots the per-SMA counters, keyed rows sorted by table then name.
func (c *Collector) SMAs() []SMAStats {
	if c == nil {
		return nil
	}
	c.mu.RLock()
	out := make([]SMAStats, 0, len(c.smas))
	for _, s := range c.smas {
		out = append(out, *s)
	}
	c.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Table != out[j].Table {
			return out[i].Table < out[j].Table
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Tables snapshots the per-table totals, sorted by name. Column
// observations are copied into each entry's Cols.
func (c *Collector) Tables() []TableSnapshot {
	if c == nil {
		return nil
	}
	c.mu.RLock()
	out := make([]TableSnapshot, 0, len(c.tables))
	for _, ts := range c.tables {
		snap := TableSnapshot{TableStats: *ts}
		snap.cols = nil
		for _, cs := range ts.cols {
			snap.Cols = append(snap.Cols, *cs)
		}
		out = append(out, snap)
	}
	c.mu.RUnlock()
	for i := range out {
		sort.Slice(out[i].Cols, func(a, b int) bool { return out[i].Cols[a].Column < out[i].Cols[b].Column })
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Table < out[j].Table })
	return out
}

// TableSnapshot is a TableStats copy with its column observations attached.
type TableSnapshot struct {
	TableStats
	Cols []ColStats
}

// Activities snapshots the in-flight statements, oldest first.
func (c *Collector) Activities() []Activity {
	if c == nil {
		return nil
	}
	c.actMu.Lock()
	out := make([]Activity, 0, len(c.acts))
	for _, a := range c.acts {
		out = append(out, *a)
	}
	c.actMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
