package stats

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRecordQueryAccumulates(t *testing.T) {
	c := New()
	for i := 0; i < 3; i++ {
		c.RecordQuery(QueryRecord{
			Fingerprint: 7, Norm: "select * from sales where amount > ?",
			Table: "SALES", Strategy: "SMA_Scan", DOP: 2,
			Dur: time.Duration(i+1) * time.Millisecond, Rows: 10,
			PagesRead: 4, PagesPruned: 6, Qualify: 1, Disqualify: 6, Ambivalent: 3,
			FilterCols: []FilterCol{{Col: "AMOUNT", NeedMin: true}},
		})
	}
	c.RecordQuery(QueryRecord{Fingerprint: 7, Norm: "…", Table: "SALES", Dur: time.Millisecond, Err: true})

	sts := c.Statements()
	if len(sts) != 1 {
		t.Fatalf("statements = %d, want 1", len(sts))
	}
	st := sts[0]
	if st.Calls != 4 || st.Errors != 1 {
		t.Errorf("calls=%d errors=%d", st.Calls, st.Errors)
	}
	if st.Text != "select * from sales where amount > ?" {
		t.Errorf("text = %q (first-seen norm should stick)", st.Text)
	}
	if st.Rows != 30 || st.PagesRead != 12 || st.PagesPruned != 18 {
		t.Errorf("rows=%d read=%d pruned=%d", st.Rows, st.PagesRead, st.PagesPruned)
	}
	if st.Qualify != 3 || st.Disqualify != 18 || st.Ambivalent != 9 {
		t.Errorf("grades = %d/%d/%d", st.Qualify, st.Disqualify, st.Ambivalent)
	}
	if st.MinNS != int64(time.Millisecond) || st.MaxNS != int64(3*time.Millisecond) {
		t.Errorf("min=%d max=%d", st.MinNS, st.MaxNS)
	}
	if st.TotalNS != int64(7*time.Millisecond) {
		t.Errorf("total=%d", st.TotalNS)
	}
	p50, p99 := st.Quantiles()
	if p50 <= 0 || p99 < p50 {
		t.Errorf("p50=%v p99=%v", p50, p99)
	}

	tabs := c.Tables()
	if len(tabs) != 1 || tabs[0].Table != "SALES" {
		t.Fatalf("tables = %+v", tabs)
	}
	if tabs[0].Scans != 4 || tabs[0].RowsRead != 30 {
		t.Errorf("scans=%d rows=%d", tabs[0].Scans, tabs[0].RowsRead)
	}
	if len(tabs[0].Cols) != 1 || tabs[0].Cols[0].Column != "AMOUNT" || tabs[0].Cols[0].Filters != 3 {
		t.Errorf("cols = %+v", tabs[0].Cols)
	}
}

func TestRecordExecAccumulates(t *testing.T) {
	c := New()
	c.RecordExec(ExecRecord{Fingerprint: 1, Norm: "insert into t values ( ? )", Kind: "insert",
		Table: "T", Dur: time.Millisecond, RowsAffected: 1, WALBytes: 100, WALSyncs: 1})
	c.RecordExec(ExecRecord{Fingerprint: 2, Norm: "delete from t where a = ?", Kind: "delete",
		Table: "T", Dur: 2 * time.Millisecond, RowsAffected: 5, WALBytes: 300, WALSyncs: 2})
	c.RecordExec(ExecRecord{Fingerprint: 3, Norm: "update t set a = ?", Kind: "update",
		Table: "T", Dur: time.Millisecond, RowsAffected: 2, WALBytes: 50, WALSyncs: 1})

	tabs := c.Tables()
	if len(tabs) != 1 {
		t.Fatalf("tables = %+v", tabs)
	}
	ts := tabs[0]
	if ts.Inserts != 1 || ts.Updates != 1 || ts.Deletes != 1 {
		t.Errorf("ins=%d upd=%d del=%d", ts.Inserts, ts.Updates, ts.Deletes)
	}
	if ts.RowsAffected != 8 || ts.WALBytes != 450 {
		t.Errorf("rowsAffected=%d walBytes=%d", ts.RowsAffected, ts.WALBytes)
	}
	for _, st := range c.Statements() {
		if st.Fingerprint == 2 && (st.WALBytes != 300 || st.WALSyncs != 2 || st.Strategy != "delete") {
			t.Errorf("delete stmt = %+v", st)
		}
	}
}

func TestStatementsSortedByTotal(t *testing.T) {
	c := New()
	c.RecordQuery(QueryRecord{Fingerprint: 1, Norm: "cheap", Dur: time.Millisecond})
	c.RecordQuery(QueryRecord{Fingerprint: 2, Norm: "dear", Dur: time.Second})
	sts := c.Statements()
	if len(sts) != 2 || sts[0].Text != "dear" || sts[1].Text != "cheap" {
		t.Errorf("order = %+v", sts)
	}
}

func TestSMACountersAndMaint(t *testing.T) {
	c := New()
	c.RecordSMA("SALES", "dmin", "SALE_DATE", "min", 5, 10)
	c.RecordSMA("SALES", "dmin", "SALE_DATE", "min", 0, 0)
	c.RecordMaint("SALES", "dmin")
	c.RecordMaint("SALES", "other") // maintenance before any plan consults it
	smas := c.SMAs()
	if len(smas) != 2 {
		t.Fatalf("smas = %+v", smas)
	}
	if s := smas[0]; s.Name != "dmin" || s.Consulted != 2 || s.Disqualified != 5 || s.PagesSaved != 10 || s.MaintOps != 1 {
		t.Errorf("dmin = %+v", s)
	}
	if s := smas[1]; s.Name != "other" || s.Consulted != 0 || s.MaintOps != 1 {
		t.Errorf("other = %+v", s)
	}
}

func TestActivities(t *testing.T) {
	c := New()
	id1 := c.BeginActivity("query", "select 1", 1)
	id2 := c.BeginActivity("exec", "insert …", 2)
	acts := c.Activities()
	if len(acts) != 2 || acts[0].ID != id1 || acts[1].ID != id2 {
		t.Fatalf("acts = %+v", acts)
	}
	c.Reset() // reset keeps in-flight activities
	if got := len(c.Activities()); got != 2 {
		t.Errorf("activities after reset = %d, want 2", got)
	}
	c.EndActivity(id1)
	c.EndActivity(0) // no-op token from a disabled collector
	if acts := c.Activities(); len(acts) != 1 || acts[0].ID != id2 {
		t.Errorf("acts = %+v", acts)
	}
}

func TestResetZeroesCounters(t *testing.T) {
	c := New()
	c.RecordQuery(QueryRecord{Fingerprint: 1, Norm: "q", Table: "T", Dur: time.Millisecond})
	c.RecordSMA("T", "s", "A", "min", 1, 2)
	c.Reset()
	if len(c.Statements()) != 0 || len(c.SMAs()) != 0 || len(c.Tables()) != 0 {
		t.Errorf("post-reset: %d stmts, %d smas, %d tables",
			len(c.Statements()), len(c.SMAs()), len(c.Tables()))
	}
}

// TestNilCollector: every method is a no-op on nil, so hot paths need no
// enabled checks.
func TestNilCollector(t *testing.T) {
	var c *Collector
	c.RecordQuery(QueryRecord{})
	c.RecordExec(ExecRecord{})
	c.RecordSMA("t", "s", "c", "min", 1, 1)
	c.RecordMaint("t", "s")
	c.EndActivity(c.BeginActivity("query", "q", 1))
	c.Reset()
	if c.Statements() != nil || c.SMAs() != nil || c.Tables() != nil || c.Activities() != nil {
		t.Error("nil collector returned non-nil snapshots")
	}
	if Advise(c, nil) != nil {
		t.Error("Advise(nil) returned advice")
	}
}

func TestQuantilesWindow(t *testing.T) {
	c := New()
	// Overflow the ring: the window keeps only the most recent latRing.
	for i := 0; i < latRing+50; i++ {
		c.RecordQuery(QueryRecord{Fingerprint: 9, Norm: "q", Dur: time.Duration(i+1) * time.Microsecond})
	}
	st := c.Statements()[0]
	p50, p99 := st.Quantiles()
	if p50 < 50*time.Microsecond || p99 > time.Duration(latRing+50)*time.Microsecond {
		t.Errorf("p50=%v p99=%v", p50, p99)
	}
	if p99 < p50 {
		t.Errorf("p99 %v < p50 %v", p99, p50)
	}
}

func TestAdvise(t *testing.T) {
	c := New()
	// AMOUNT: filtered twice, pages read, nothing pruned, no covering SMA → add.
	for i := 0; i < 2; i++ {
		c.RecordQuery(QueryRecord{Fingerprint: 1, Norm: "q", Table: "SALES",
			Dur: time.Millisecond, PagesRead: 40, FilterCols: []FilterCol{{Col: "AMOUNT", NeedMin: true}}})
	}
	// REGION: filtered once only → below adviseMinFilters, no advice.
	c.RecordQuery(QueryRecord{Fingerprint: 2, Norm: "q2", Table: "SALES",
		Dur: time.Millisecond, PagesRead: 40, FilterCols: []FilterCol{{Col: "REGION", NeedMin: true, NeedMax: true}}})
	// SALE_DATE: covered by the catalog → no advice even though unpruned.
	for i := 0; i < 2; i++ {
		c.RecordQuery(QueryRecord{Fingerprint: 3, Norm: "q3", Table: "SALES",
			Dur: time.Millisecond, PagesRead: 40, FilterCols: []FilterCol{{Col: "SALE_DATE", NeedMin: true}}})
	}
	// dead: consulted, never disqualified → drop. live: disqualified → keep.
	c.RecordSMA("SALES", "dead", "SALE_DATE", "min", 0, 0)
	c.RecordMaint("SALES", "dead")
	c.RecordSMA("SALES", "live", "SALE_DATE", "max", 3, 9)

	catalog := []CatalogSMA{
		{Table: "SALES", Name: "dead", Column: "SALE_DATE", Kind: "min"},
		{Table: "SALES", Name: "live", Column: "SALE_DATE", Kind: "max"},
	}
	advice := Advise(c, catalog)
	if len(advice) != 2 {
		t.Fatalf("advice = %+v", advice)
	}
	add, drop := advice[0], advice[1]
	if add.Action != "add" || add.Table != "SALES" || add.Target != "AMOUNT" {
		t.Errorf("add = %+v", add)
	}
	if add.EstPagesSaved != 80 || add.Filters != 2 {
		t.Errorf("add economics = %+v", add)
	}
	if add.Suggestion != "define sma amount_min select min(AMOUNT) from SALES" {
		t.Errorf("add suggestion = %q", add.Suggestion)
	}
	if drop.Action != "drop" || drop.Target != "sma dead" || drop.MaintOps != 1 {
		t.Errorf("drop = %+v", drop)
	}
	if drop.Suggestion != "drop sma dead on SALES" {
		t.Errorf("drop suggestion = %q", drop.Suggestion)
	}
}

// TestAdviseOperatorAware: the suggested vector follows the workload's
// operators — >= filters prune through max, not min — and a column whose
// min side is covered still earns a max suggestion when >= filters need it.
func TestAdviseOperatorAware(t *testing.T) {
	c := New()
	// D: filtered twice with >= → a max vector is what prunes.
	for i := 0; i < 2; i++ {
		c.RecordQuery(QueryRecord{Fingerprint: 1, Norm: "q", Table: "T",
			Dur: time.Millisecond, PagesRead: 40, FilterCols: []FilterCol{{Col: "D", NeedMax: true}}})
	}
	// E: min SMA defined but the workload filters with >= only.
	for i := 0; i < 2; i++ {
		c.RecordQuery(QueryRecord{Fingerprint: 2, Norm: "q2", Table: "T",
			Dur: time.Millisecond, PagesRead: 40, FilterCols: []FilterCol{{Col: "E", NeedMax: true}}})
	}
	catalog := []CatalogSMA{{Table: "T", Name: "e_min", Column: "E", Kind: "min"}}
	advice := Advise(c, catalog)
	var adds []Advice
	for _, a := range advice {
		if a.Action == "add" {
			adds = append(adds, a)
		}
	}
	if len(adds) != 2 {
		t.Fatalf("add advice = %+v", advice)
	}
	for _, a := range adds {
		switch a.Target {
		case "D":
			if a.Suggestion != "define sma d_max select max(D) from T" {
				t.Errorf("D suggestion = %q", a.Suggestion)
			}
		case "E":
			if a.Suggestion != "define sma e_max select max(E) from T" {
				t.Errorf("E suggestion = %q", a.Suggestion)
			}
		default:
			t.Errorf("unexpected add target %q", a.Target)
		}
	}
}

// TestAdviseNoPruneAfterCoverage: once a column's queries actually prune
// pages, the add recommendation disappears.
func TestAdviseAddClearsAfterPruning(t *testing.T) {
	c := New()
	for i := 0; i < 2; i++ {
		c.RecordQuery(QueryRecord{Fingerprint: 1, Norm: "q", Table: "T",
			Dur: time.Millisecond, PagesRead: 10, PagesPruned: 30, FilterCols: []FilterCol{{Col: "A", NeedMin: true}}})
	}
	if advice := Advise(c, nil); len(advice) != 0 {
		t.Errorf("advice = %+v", advice)
	}
}

func TestCollectorConcurrency(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				fp := uint64(g*1000 + i%10)
				c.RecordQuery(QueryRecord{Fingerprint: fp, Norm: fmt.Sprintf("q%d", fp),
					Table: "T", Dur: time.Microsecond, FilterCols: []FilterCol{{Col: "A", NeedMin: true}}})
				c.RecordSMA("T", "s", "A", "min", 1, 1)
				c.RecordMaint("T", "s")
				c.EndActivity(c.BeginActivity("query", "q", fp))
			}
		}(g)
	}
	wg.Wait()
	var calls int64
	for _, st := range c.Statements() {
		calls += st.Calls
	}
	if calls != 8*200 {
		t.Errorf("calls = %d, want %d", calls, 8*200)
	}
	if s := c.SMAs(); len(s) != 1 || s[0].Consulted != 8*200 || s[0].MaintOps != 8*200 {
		t.Errorf("smas = %+v", s)
	}
	if a := c.Activities(); len(a) != 0 {
		t.Errorf("activities = %+v", a)
	}
}
