package stats

import (
	"fmt"
	"strings"
	"time"

	"sma/internal/tuple"
)

// Virtual system-table names. The engine intercepts these at plan time and
// serves an in-memory snapshot instead of a heap scan; they are queryable
// through every SELECT surface (wire protocol, client, smaql, sma.DB).
const (
	TableStatements = "SMA_STAT_STATEMENTS"
	TableSMAs       = "SMA_STAT_SMAS"
	TableTables     = "SMA_STAT_TABLES"
	TableActivity   = "SMA_STAT_ACTIVITY"
	TableAdvisor    = "SMA_ADVISOR"
)

// IsVirtual reports whether name (any case) is an introspection table.
func IsVirtual(name string) bool {
	switch strings.ToUpper(name) {
	case TableStatements, TableSMAs, TableTables, TableActivity, TableAdvisor:
		return true
	}
	return false
}

// VirtualNames lists the introspection tables in catalog order.
func VirtualNames() []string {
	return []string{TableStatements, TableSMAs, TableTables, TableActivity, TableAdvisor}
}

// Relation is a materialized virtual-table snapshot.
type Relation struct {
	Name   string
	Schema *tuple.Schema
	Tuples []tuple.Tuple
}

// CatalogSMA describes one defined SMA; the engine supplies the catalog so
// the stats layer can join observed counters against definitions.
type CatalogSMA struct {
	Table  string
	Name   string
	Column string // the min/max column, or the count SMA's group-by column
	Kind   string // "min", "max", "count"
}

var (
	statementsSchema = tuple.MustSchema([]tuple.Column{
		{Name: "FINGERPRINT", Type: tuple.TChar, Len: 16},
		{Name: "CALLS", Type: tuple.TInt64},
		{Name: "ERRORS", Type: tuple.TInt64},
		{Name: "TOTAL_MS", Type: tuple.TFloat64},
		{Name: "MIN_MS", Type: tuple.TFloat64},
		{Name: "MAX_MS", Type: tuple.TFloat64},
		{Name: "P50_MS", Type: tuple.TFloat64},
		{Name: "P99_MS", Type: tuple.TFloat64},
		{Name: "ROWS", Type: tuple.TInt64},
		{Name: "ROWS_AFFECTED", Type: tuple.TInt64},
		{Name: "PAGES_READ", Type: tuple.TInt64},
		{Name: "PAGES_PRUNED", Type: tuple.TInt64},
		{Name: "QUALIFY", Type: tuple.TInt64},
		{Name: "DISQUALIFY", Type: tuple.TInt64},
		{Name: "AMBIVALENT", Type: tuple.TInt64},
		{Name: "STRATEGY", Type: tuple.TChar, Len: 16},
		{Name: "DOP", Type: tuple.TInt64},
		{Name: "WAL_BYTES", Type: tuple.TInt64},
		{Name: "WAL_SYNCS", Type: tuple.TInt64},
		{Name: "QUERY", Type: tuple.TChar, Len: 96},
	})
	smasSchema = tuple.MustSchema([]tuple.Column{
		{Name: "TABLE_NAME", Type: tuple.TChar, Len: 24},
		{Name: "SMA_NAME", Type: tuple.TChar, Len: 24},
		{Name: "COLUMN_NAME", Type: tuple.TChar, Len: 24},
		{Name: "KIND", Type: tuple.TChar, Len: 8},
		{Name: "CONSULTED", Type: tuple.TInt64},
		{Name: "DISQUALIFIED", Type: tuple.TInt64},
		{Name: "PAGES_SAVED", Type: tuple.TInt64},
		{Name: "MAINT_OPS", Type: tuple.TInt64},
	})
	tablesSchema = tuple.MustSchema([]tuple.Column{
		{Name: "TABLE_NAME", Type: tuple.TChar, Len: 24},
		{Name: "SCANS", Type: tuple.TInt64},
		{Name: "ROWS_READ", Type: tuple.TInt64},
		{Name: "PAGES_READ", Type: tuple.TInt64},
		{Name: "PAGES_PRUNED", Type: tuple.TInt64},
		{Name: "INSERTS", Type: tuple.TInt64},
		{Name: "UPDATES", Type: tuple.TInt64},
		{Name: "DELETES", Type: tuple.TInt64},
		{Name: "ROWS_AFFECTED", Type: tuple.TInt64},
		{Name: "WAL_BYTES", Type: tuple.TInt64},
	})
	activitySchema = tuple.MustSchema([]tuple.Column{
		{Name: "ID", Type: tuple.TInt64},
		{Name: "KIND", Type: tuple.TChar, Len: 8},
		{Name: "ELAPSED_MS", Type: tuple.TFloat64},
		{Name: "FINGERPRINT", Type: tuple.TChar, Len: 16},
		{Name: "SQL_TEXT", Type: tuple.TChar, Len: 96},
	})
	advisorSchema = tuple.MustSchema([]tuple.Column{
		{Name: "ACTION", Type: tuple.TChar, Len: 4},
		{Name: "TABLE_NAME", Type: tuple.TChar, Len: 24},
		{Name: "TARGET", Type: tuple.TChar, Len: 32},
		{Name: "FILTERS", Type: tuple.TInt64},
		{Name: "EST_PAGES_SAVED", Type: tuple.TInt64},
		{Name: "MAINT_OPS", Type: tuple.TInt64},
		{Name: "REASON", Type: tuple.TChar, Len: 96},
		{Name: "SUGGESTION", Type: tuple.TChar, Len: 96},
	})
)

// RelationFor materializes the named virtual table from the collector's
// current counters. A nil collector (observability disabled) yields the
// table's schema with zero rows. The second result is false when name is
// not a virtual table.
func RelationFor(name string, c *Collector, catalog []CatalogSMA) (*Relation, bool) {
	switch strings.ToUpper(name) {
	case TableStatements:
		return statementsRelation(c), true
	case TableSMAs:
		return smasRelation(c, catalog), true
	case TableTables:
		return tablesRelation(c), true
	case TableActivity:
		return activityRelation(c), true
	case TableAdvisor:
		return advisorRelation(c, catalog), true
	}
	return nil, false
}

func statementsRelation(c *Collector) *Relation {
	rel := &Relation{Name: TableStatements, Schema: statementsSchema}
	for _, st := range c.Statements() {
		p50, p99 := st.Quantiles()
		t := tuple.NewTuple(statementsSchema)
		setChar(t, 0, fmt.Sprintf("%016x", st.Fingerprint))
		t.SetInt64(1, st.Calls)
		t.SetInt64(2, st.Errors)
		t.SetFloat64(3, ms(time.Duration(st.TotalNS)))
		t.SetFloat64(4, ms(time.Duration(st.MinNS)))
		t.SetFloat64(5, ms(time.Duration(st.MaxNS)))
		t.SetFloat64(6, ms(p50))
		t.SetFloat64(7, ms(p99))
		t.SetInt64(8, st.Rows)
		t.SetInt64(9, st.RowsAffected)
		t.SetInt64(10, st.PagesRead)
		t.SetInt64(11, st.PagesPruned)
		t.SetInt64(12, st.Qualify)
		t.SetInt64(13, st.Disqualify)
		t.SetInt64(14, st.Ambivalent)
		setChar(t, 15, st.Strategy)
		t.SetInt64(16, int64(st.DOP))
		t.SetInt64(17, st.WALBytes)
		t.SetInt64(18, st.WALSyncs)
		setChar(t, 19, st.Text)
		rel.Tuples = append(rel.Tuples, t)
	}
	return rel
}

func smasRelation(c *Collector, catalog []CatalogSMA) *Relation {
	rel := &Relation{Name: TableSMAs, Schema: smasSchema}
	stats := make(map[string]SMAStats, 8)
	for _, s := range c.SMAs() {
		stats[smaKey(s.Table, s.Name)] = s
	}
	// One row per *defined* SMA: counters for dropped SMAs linger in the
	// collector until `reset stats` but no longer appear here.
	for _, def := range catalog {
		s := stats[smaKey(def.Table, def.Name)]
		t := tuple.NewTuple(smasSchema)
		setChar(t, 0, def.Table)
		setChar(t, 1, def.Name)
		setChar(t, 2, def.Column)
		setChar(t, 3, def.Kind)
		t.SetInt64(4, s.Consulted)
		t.SetInt64(5, s.Disqualified)
		t.SetInt64(6, s.PagesSaved)
		t.SetInt64(7, s.MaintOps)
		rel.Tuples = append(rel.Tuples, t)
	}
	return rel
}

func tablesRelation(c *Collector) *Relation {
	rel := &Relation{Name: TableTables, Schema: tablesSchema}
	for _, ts := range c.Tables() {
		t := tuple.NewTuple(tablesSchema)
		setChar(t, 0, ts.Table)
		t.SetInt64(1, ts.Scans)
		t.SetInt64(2, ts.RowsRead)
		t.SetInt64(3, ts.PagesRead)
		t.SetInt64(4, ts.PagesPruned)
		t.SetInt64(5, ts.Inserts)
		t.SetInt64(6, ts.Updates)
		t.SetInt64(7, ts.Deletes)
		t.SetInt64(8, ts.RowsAffected)
		t.SetInt64(9, ts.WALBytes)
		rel.Tuples = append(rel.Tuples, t)
	}
	return rel
}

func activityRelation(c *Collector) *Relation {
	rel := &Relation{Name: TableActivity, Schema: activitySchema}
	now := time.Now()
	for _, a := range c.Activities() {
		t := tuple.NewTuple(activitySchema)
		t.SetInt64(0, a.ID)
		setChar(t, 1, a.Kind)
		t.SetFloat64(2, ms(now.Sub(a.Start)))
		setChar(t, 3, fmt.Sprintf("%016x", a.Fingerprint))
		setChar(t, 4, strings.Join(strings.Fields(a.SQL), " "))
		rel.Tuples = append(rel.Tuples, t)
	}
	return rel
}

func advisorRelation(c *Collector, catalog []CatalogSMA) *Relation {
	rel := &Relation{Name: TableAdvisor, Schema: advisorSchema}
	for _, adv := range Advise(c, catalog) {
		t := tuple.NewTuple(advisorSchema)
		setChar(t, 0, adv.Action)
		setChar(t, 1, adv.Table)
		setChar(t, 2, adv.Target)
		t.SetInt64(3, adv.Filters)
		t.SetInt64(4, adv.EstPagesSaved)
		t.SetInt64(5, adv.MaintOps)
		setChar(t, 6, adv.Reason)
		setChar(t, 7, adv.Suggestion)
		rel.Tuples = append(rel.Tuples, t)
	}
	return rel
}

// setChar writes a string into a fixed-width char column, truncating to
// the column width (SetChar pads but would silently keep a longer backing
// string honest; the truncation here makes the contract explicit).
func setChar(t tuple.Tuple, i int, s string) {
	if w := t.Schema.Column(i).Len; len(s) > w {
		s = s[:w]
	}
	t.SetChar(i, s)
}

func ms(d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(d.Nanoseconds()) / 1e6
}
