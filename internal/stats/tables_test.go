package stats

import (
	"strings"
	"testing"
	"time"
)

func TestIsVirtual(t *testing.T) {
	for _, name := range VirtualNames() {
		if !IsVirtual(name) || !IsVirtual(strings.ToLower(name)) {
			t.Errorf("IsVirtual(%q) = false", name)
		}
	}
	if IsVirtual("SALES") || IsVirtual("") {
		t.Error("IsVirtual misfires on ordinary names")
	}
}

// TestRelationForNilCollector: with observability off every virtual table is
// still queryable — schema intact, zero rows.
func TestRelationForNilCollector(t *testing.T) {
	for _, name := range VirtualNames() {
		rel, ok := RelationFor(name, nil, nil)
		if !ok || rel == nil || rel.Schema == nil {
			t.Fatalf("RelationFor(%q, nil) = %v, %v", name, rel, ok)
		}
		if len(rel.Tuples) != 0 {
			t.Errorf("%s: %d rows from nil collector", name, len(rel.Tuples))
		}
	}
	if _, ok := RelationFor("SALES", nil, nil); ok {
		t.Error("RelationFor accepted a heap table name")
	}
}

func TestStatementsRelationRendering(t *testing.T) {
	c := New()
	c.RecordQuery(QueryRecord{Fingerprint: 0xabc, Norm: "select * from t where a > ?",
		Table: "T", Strategy: "SMA_Scan", DOP: 2, Dur: 3 * time.Millisecond,
		Rows: 7, PagesRead: 4, PagesPruned: 12})
	rel, ok := RelationFor("sma_stat_statements", c, nil)
	if !ok || len(rel.Tuples) != 1 {
		t.Fatalf("rel = %+v ok=%v", rel, ok)
	}
	tp := rel.Tuples[0]
	if got := tp.Char(0); got != "0000000000000abc" {
		t.Errorf("fingerprint = %q", got)
	}
	if tp.Int64(1) != 1 || tp.Int64(8) != 7 || tp.Int64(10) != 4 || tp.Int64(11) != 12 {
		t.Errorf("counters: calls=%d rows=%d read=%d pruned=%d",
			tp.Int64(1), tp.Int64(8), tp.Int64(10), tp.Int64(11))
	}
	if got := tp.Float64(3); got < 2.9 || got > 3.1 {
		t.Errorf("total_ms = %v", got)
	}
	if got := tp.Char(15); got != "SMA_Scan" {
		t.Errorf("strategy = %q", got)
	}
	if got := tp.Char(19); got != "select * from t where a > ?" {
		t.Errorf("query = %q", got)
	}
}

// TestSMAsRelationCatalogDriven: one row per defined SMA, zero-valued when
// never consulted; dropped SMAs (absent from the catalog) don't appear.
func TestSMAsRelationCatalogDriven(t *testing.T) {
	c := New()
	c.RecordSMA("T", "used", "A", "min", 2, 8)
	c.RecordSMA("T", "dropped", "B", "max", 1, 1)
	catalog := []CatalogSMA{
		{Table: "T", Name: "used", Column: "A", Kind: "min"},
		{Table: "T", Name: "fresh", Column: "C", Kind: "max"},
	}
	rel, _ := RelationFor(TableSMAs, c, catalog)
	if len(rel.Tuples) != 2 {
		t.Fatalf("rows = %d, want 2", len(rel.Tuples))
	}
	if got := rel.Tuples[0].Char(1); got != "used" {
		t.Errorf("row0 sma = %q", got)
	}
	if rel.Tuples[0].Int64(4) != 1 || rel.Tuples[0].Int64(5) != 2 || rel.Tuples[0].Int64(6) != 8 {
		t.Errorf("used counters = %v/%v/%v",
			rel.Tuples[0].Int64(4), rel.Tuples[0].Int64(5), rel.Tuples[0].Int64(6))
	}
	if got := rel.Tuples[1].Char(1); got != "fresh" {
		t.Errorf("row1 sma = %q", got)
	}
	if rel.Tuples[1].Int64(4) != 0 {
		t.Errorf("fresh consulted = %d, want 0", rel.Tuples[1].Int64(4))
	}
}

// TestSetCharTruncates: oversized strings (long SQL, long reasons) truncate
// to the column width instead of corrupting the fixed-width tuple.
func TestSetCharTruncates(t *testing.T) {
	c := New()
	long := strings.Repeat("x", 200)
	c.RecordQuery(QueryRecord{Fingerprint: 1, Norm: "select " + long, Dur: time.Millisecond})
	rel, _ := RelationFor(TableStatements, c, nil)
	if got := rel.Tuples[0].Char(19); len(got) != 96 {
		t.Errorf("query length = %d, want 96", len(got))
	}
}

func TestActivityRelation(t *testing.T) {
	c := New()
	c.BeginActivity("query", "select *\n  from t", 0xf)
	rel, _ := RelationFor(TableActivity, c, nil)
	if len(rel.Tuples) != 1 {
		t.Fatalf("rows = %d", len(rel.Tuples))
	}
	tp := rel.Tuples[0]
	if tp.Char(1) != "query" || tp.Char(3) != "000000000000000f" {
		t.Errorf("kind=%q fp=%q", tp.Char(1), tp.Char(3))
	}
	if got := tp.Char(4); got != "select * from t" {
		t.Errorf("sql_text = %q (whitespace should fold)", got)
	}
	if tp.Float64(2) < 0 {
		t.Errorf("elapsed_ms = %v", tp.Float64(2))
	}
}
