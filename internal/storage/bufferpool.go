package storage

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sma/internal/obs"
)

// Frame is a buffer-pool slot holding one page image.
type Frame struct {
	id    PageID
	data  [PageSize]byte
	dirty bool
	pins  int
	elem  *list.Element // position in the LRU list when unpinned

	// loading is non-nil while the page image is being read from disk
	// (outside the pool lock); it is closed when the read completes.
	// Co-fetchers of the same page wait on it instead of issuing a second
	// read. loadErr carries the read error, published before the close.
	loading chan struct{}
	loadErr error

	// prefetched marks a frame whose read was issued by a Prefetcher and
	// that no demand fetch has claimed yet; the first demand hit counts as
	// a prefetch hit and clears the mark.
	prefetched bool

	// epoch is the pool's statement epoch at the frame's last dirty
	// unpin. Under a statement barrier, a dirty frame whose epoch matches
	// the current epoch was (or may have been) dirtied by the in-flight
	// statement and must not reach disk; older dirt is committed and may
	// be written back (after its full-page image is logged).
	epoch uint64
}

// ID returns the page id held by the frame.
func (fr *Frame) ID() PageID { return fr.id }

// Data returns the page bytes. The slice is valid while the frame is pinned.
func (fr *Frame) Data() []byte { return fr.data[:] }

// MarkDirty records that the page image was modified and must be written
// back on eviction or flush.
func (fr *Frame) MarkDirty() { fr.dirty = true }

// PoolStats aggregates buffer pool activity.
type PoolStats struct {
	Hits         int64 // requests satisfied without disk I/O
	Misses       int64 // requests that required a physical read
	Evictions    int64 // frames written back / recycled
	Prefetched   int64 // physical reads issued by prefetchers
	PrefetchHits int64 // demand fetches that landed on a prefetched frame
	Overflows    int64 // frames allocated past capacity under a statement barrier
	CorruptPages int64 // pages quarantined after failing checksum verification
}

// Add folds another snapshot into s; engines use it to merge the per-table
// pools into one database-wide view.
func (s *PoolStats) Add(o PoolStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Prefetched += o.Prefetched
	s.PrefetchHits += o.PrefetchHits
	s.Overflows += o.Overflows
	s.CorruptPages += o.CorruptPages
}

// BufferPool caches pages of a single DiskManager with LRU replacement.
// Pages are pinned while in use; unpinned frames are eviction candidates in
// least-recently-used order.
//
// The pool is safe for concurrent use: parallel partition workers pin
// disjoint (and occasionally shared) pages simultaneously. Physical reads
// happen outside the pool lock so concurrent misses overlap their I/O;
// activity counters are atomic so stat bumps and snapshots never contend
// on the pool mutex.
// WriteBackHook intercepts in-place rewrites of dirty pages. The engine
// implements it over the WAL: PageImage logs a full image of the page,
// Barrier forces logged images to stable storage. Together they make a
// torn in-place write recoverable — the pre-write image is always on
// disk before the write that could tear it begins.
type WriteBackHook interface {
	PageImage(id PageID, data []byte) error
	Barrier() error
}

type BufferPool struct {
	mu     sync.Mutex
	disk   *DiskManager
	cap    int
	frames map[PageID]*Frame
	lru    *list.List // of PageID, front = most recently unpinned

	// hook, when non-nil, runs before every dirty page write-back.
	hook WriteBackHook
	// barrier > 0 marks a statement in flight: eviction must not write
	// back frames dirtied by the current statement, so uncommitted page
	// images never reach disk (the no-steal policy that lets rollback
	// stay purely in memory). Frames whose dirt predates the barrier hold
	// only committed data and stay evictable.
	barrier int
	// epoch increments at every BeginBarrier; together with Frame.epoch
	// it distinguishes current-statement dirt from committed dirt.
	epoch uint64

	// verify controls checksum verification of physical reads. It is on
	// by default; recovery turns it off while replaying the WAL, because
	// a torn page is expected there — the full-page image that heals it
	// sits later in the log, and intermediate record-level redo may read
	// the page first.
	verify bool
	// quarantined holds pages that failed verification. Every later
	// fetch of a quarantined page fails fast with the recorded error —
	// re-reading cannot help, and the rest of the pool keeps working.
	quarantined map[PageID]*CorruptPageError
	// onCorrupt, when non-nil, is called (without bp.mu held) each time
	// a page is newly quarantined; the engine uses it to flip the
	// database into degraded read-only mode.
	onCorrupt func(PageID)

	hits         atomic.Int64
	misses       atomic.Int64
	evictions    atomic.Int64
	prefetched   atomic.Int64
	prefetchHits atomic.Int64
	overflows    atomic.Int64
	corrupt      atomic.Int64

	// Observability hooks, set once via SetObs before the pool sees
	// concurrent traffic. Nil histograms are inert, so the disabled path
	// costs one pointer test per physical read.
	readLatency *obs.Histogram // physical read latency, demand + prefetch
	prefetchOcc *obs.Histogram // prefetch window occupancy per consumed page
}

// SetObs wires the pool's storage metric families. Call it right after
// NewBufferPool, before any fetch: the fields are read without
// synchronization on the hot path.
func (bp *BufferPool) SetObs(m *obs.StorageMetrics) {
	if m == nil {
		return
	}
	bp.readLatency = m.ReadSeconds
	bp.prefetchOcc = m.PrefetchOccupancy
}

// NewBufferPool creates a pool of the given capacity (in pages) over disk.
func NewBufferPool(disk *DiskManager, capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{
		disk:        disk,
		cap:         capacity,
		frames:      make(map[PageID]*Frame, capacity),
		lru:         list.New(),
		verify:      true,
		quarantined: make(map[PageID]*CorruptPageError),
	}
}

// SetVerifyReads toggles checksum verification of physical reads.
// Recovery disables it while torn pages may legitimately be read before
// their healing full-page image is replayed.
func (bp *BufferPool) SetVerifyReads(on bool) {
	bp.mu.Lock()
	bp.verify = on
	bp.mu.Unlock()
}

// SetCorruptionHandler installs a callback invoked (outside the pool
// lock) whenever a page is newly quarantined. Call it before the pool
// sees concurrent traffic.
func (bp *BufferPool) SetCorruptionHandler(fn func(PageID)) {
	bp.mu.Lock()
	bp.onCorrupt = fn
	bp.mu.Unlock()
}

// Quarantined returns the ids of pages currently quarantined for failing
// checksum verification.
func (bp *BufferPool) Quarantined() []PageID {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	ids := make([]PageID, 0, len(bp.quarantined))
	for id := range bp.quarantined {
		ids = append(ids, id)
	}
	return ids
}

// SetWriteBackHook installs the dirty write-back interceptor. Call it
// before the pool sees concurrent traffic.
func (bp *BufferPool) SetWriteBackHook(h WriteBackHook) {
	bp.mu.Lock()
	bp.hook = h
	bp.mu.Unlock()
}

// BeginBarrier enters no-steal mode: until the matching EndBarrier,
// eviction skips frames dirtied under this barrier, so pages dirtied by
// the current statement cannot reach disk before the statement commits.
// Every mutation pins its frame and unpins it afterwards, which is where
// the frame picks up the new epoch — so a frame dirtied after this call
// always carries it. Do not FlushAll or DropAll while a barrier is up.
func (bp *BufferPool) BeginBarrier() {
	bp.mu.Lock()
	bp.barrier++
	bp.epoch++
	bp.mu.Unlock()
}

// EndBarrier leaves no-steal mode. If the statement's working set
// overflowed the pool, the excess frames are evicted here — their dirt
// is now committed (or undone), so the normal image-then-write path
// applies.
func (bp *BufferPool) EndBarrier() {
	bp.mu.Lock()
	if bp.barrier > 0 {
		bp.barrier--
	}
	if bp.barrier == 0 {
		bp.trimLocked()
	}
	bp.mu.Unlock()
}

// trimLocked evicts LRU unpinned frames until the pool is back at
// capacity, two-phase like flushLocked: all page images first, one
// barrier, then the writes. Best effort — on any error the remaining
// frames stay resident (still dirty), to be retried by later evictions,
// FlushAll, or the next trim.
func (bp *BufferPool) trimLocked() {
	excess := len(bp.frames) - bp.cap
	if excess <= 0 {
		return
	}
	var victims []*list.Element
	for e := bp.lru.Back(); e != nil && len(victims) < excess; e = e.Prev() {
		victims = append(victims, e)
	}
	if bp.hook != nil {
		logged := false
		for _, e := range victims {
			fr := bp.frames[e.Value.(PageID)]
			if fr.dirty {
				if bp.hook.PageImage(fr.id, fr.data[:]) != nil {
					return
				}
				logged = true
			}
		}
		if logged && bp.hook.Barrier() != nil {
			return
		}
	}
	for _, e := range victims {
		fr := bp.frames[e.Value.(PageID)]
		if fr.dirty {
			if bp.disk.WritePage(fr.id, fr.data[:]) != nil {
				return
			}
			fr.dirty = false
		}
		bp.lru.Remove(e)
		delete(bp.frames, fr.id)
		bp.evictions.Add(1)
	}
}

// Discard drops page id from the pool without writing it back, losing
// any dirty content. Rollback and recovery use it to forget pages that
// are being truncated away. Discarding a pinned page is an error;
// discarding a non-resident page is a no-op.
func (bp *BufferPool) Discard(id PageID) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	fr, ok := bp.frames[id]
	if !ok {
		return nil
	}
	if fr.pins > 0 {
		return fmt.Errorf("storage: discard of pinned page %d", id)
	}
	if fr.elem != nil {
		bp.lru.Remove(fr.elem)
	}
	delete(bp.frames, id)
	return nil
}

// Capacity returns the pool capacity in pages.
func (bp *BufferPool) Capacity() int { return bp.cap }

// Disk returns the underlying disk manager.
func (bp *BufferPool) Disk() *DiskManager { return bp.disk }

// FetchPage pins page id, reading it from disk on a miss.
// The caller must UnpinPage it when done.
func (bp *BufferPool) FetchPage(id PageID) (*Frame, error) {
	fr, _, err := bp.fetch(id, false)
	return fr, err
}

// fetch implements FetchPage. prefetch marks the frame on a miss so the
// first later demand hit can be attributed to readahead; missed reports
// whether this call issued the physical read.
func (bp *BufferPool) fetch(id PageID, prefetch bool) (*Frame, bool, error) {
	bp.mu.Lock()
	if ce, ok := bp.quarantined[id]; ok {
		bp.mu.Unlock()
		return nil, false, ce
	}
	if fr, ok := bp.frames[id]; ok {
		bp.hits.Add(1)
		if !prefetch && fr.prefetched {
			fr.prefetched = false
			bp.prefetchHits.Add(1)
		}
		bp.pinLocked(fr)
		loading := fr.loading
		bp.mu.Unlock()
		if loading != nil {
			// Another goroutine is reading this page; wait for it. On
			// failure the loader already deregistered the frame and zeroed
			// its pins, so there is nothing to unpin here.
			<-loading
			if fr.loadErr != nil {
				return nil, false, fr.loadErr
			}
		}
		return fr, false, nil
	}
	bp.misses.Add(1)
	fr, err := bp.victimLocked(id)
	if err != nil {
		bp.mu.Unlock()
		return nil, false, err
	}
	// Read outside the lock so concurrent misses on different pages overlap
	// their I/O. The frame is registered and pinned with an open loading
	// channel: co-fetchers of the same page wait on it rather than racing a
	// second read, and the pin keeps the frame off the eviction list.
	loading := make(chan struct{})
	fr.loading = loading
	fr.loadErr = nil
	fr.prefetched = prefetch
	if prefetch {
		bp.prefetched.Add(1)
	}
	bp.mu.Unlock()

	// If the read panics (a fault-injection hook, or a bug in a lower
	// layer), deregister the frame and wake co-fetchers before the panic
	// propagates: a statement-level panic boundary above must not leave
	// other goroutines wedged on the loading channel forever.
	completed := false
	defer func() {
		if completed {
			return
		}
		bp.mu.Lock()
		delete(bp.frames, id)
		fr.pins = 0
		fr.loadErr = fmt.Errorf("storage: read of page %d aborted by panic", id)
		fr.loading = nil
		bp.mu.Unlock()
		close(loading)
	}()

	if bp.readLatency != nil {
		t0 := time.Now()
		err = bp.disk.ReadPage(id, fr.data[:])
		bp.readLatency.ObserveDuration(time.Since(t0))
	} else {
		err = bp.disk.ReadPage(id, fr.data[:])
	}
	bp.mu.Lock()
	var notify func(PageID)
	if err == nil && bp.verify && !VerifyPage(fr.data[:]) {
		ce := &CorruptPageError{Path: bp.disk.Path(), Page: id}
		bp.quarantined[id] = ce
		bp.corrupt.Add(1)
		notify = bp.onCorrupt
		err = ce
	}
	if err != nil {
		// Discard the frame; waiters observe loadErr and give up their pins
		// collectively (the frame is no longer resident).
		delete(bp.frames, id)
		fr.pins = 0
		fr.loadErr = err
	}
	fr.loading = nil
	bp.mu.Unlock()
	completed = true
	close(loading)
	if notify != nil {
		notify(id)
	}
	if err != nil {
		return nil, false, err
	}
	return fr, true, nil
}

// NewPage allocates a fresh page on disk, pins it, and returns the frame.
func (bp *BufferPool) NewPage() (*Frame, error) {
	id, err := bp.disk.AllocatePage()
	if err != nil {
		return nil, err
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	fr, err := bp.victimLocked(id)
	if err != nil {
		return nil, err
	}
	for i := range fr.data {
		fr.data[i] = 0
	}
	return fr, nil
}

// pinLocked pins an in-pool frame, removing it from the LRU list.
func (bp *BufferPool) pinLocked(fr *Frame) {
	if fr.pins == 0 && fr.elem != nil {
		bp.lru.Remove(fr.elem)
		fr.elem = nil
	}
	fr.pins++
}

// victimLocked obtains a frame for page id (which must not be resident),
// evicting the LRU unpinned page if the pool is full. While a statement
// barrier is up, frames dirtied under the current epoch are not
// candidates — writing back a page dirtied by an uncommitted statement
// would leak its effects to disk. The returned frame is pinned and
// registered under id, with stale contents.
func (bp *BufferPool) victimLocked(id PageID) (*Frame, error) {
	if len(bp.frames) >= bp.cap {
		var victim *Frame
		var elem *list.Element
		for e := bp.lru.Back(); e != nil; e = e.Prev() {
			fr := bp.frames[e.Value.(PageID)]
			if bp.barrier > 0 && fr.dirty && fr.epoch == bp.epoch {
				continue
			}
			victim, elem = fr, e
			break
		}
		if victim == nil {
			if bp.barrier > 0 {
				// Every candidate holds uncommitted dirt. The statement's
				// working set must stay in memory, so grow past capacity;
				// EndBarrier trims the pool back down once the dirt is
				// committed (or rolled back).
				bp.overflows.Add(1)
				fr := &Frame{id: id, pins: 1}
				bp.frames[id] = fr
				return fr, nil
			}
			return nil, fmt.Errorf("storage: buffer pool exhausted: all %d frames pinned", bp.cap)
		}
		if victim.dirty {
			if bp.hook != nil {
				if err := bp.hook.PageImage(victim.id, victim.data[:]); err != nil {
					return nil, err
				}
				if err := bp.hook.Barrier(); err != nil {
					return nil, err
				}
			}
			if err := bp.disk.WritePage(victim.id, victim.data[:]); err != nil {
				return nil, err
			}
			victim.dirty = false
		}
		bp.lru.Remove(elem)
		delete(bp.frames, victim.id)
		bp.evictions.Add(1)
		victim.id = id
		victim.pins = 1
		victim.elem = nil
		victim.loading = nil
		victim.loadErr = nil
		victim.prefetched = false
		bp.frames[id] = victim
		return victim, nil
	}
	fr := &Frame{id: id, pins: 1}
	bp.frames[id] = fr
	return fr, nil
}

// UnpinPage releases one pin on page id. When the pin count reaches zero the
// frame becomes an eviction candidate.
func (bp *BufferPool) UnpinPage(id PageID) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	fr, ok := bp.frames[id]
	if !ok {
		return fmt.Errorf("storage: unpin of non-resident page %d", id)
	}
	if fr.pins <= 0 {
		return fmt.Errorf("storage: unpin of unpinned page %d", id)
	}
	fr.pins--
	if fr.pins == 0 {
		fr.elem = bp.lru.PushFront(id)
	}
	if fr.dirty {
		// Every mutation happens while pinned, so stamping at unpin
		// catches all pages the current statement may have dirtied (a
		// page merely read under the barrier is stamped too — safe,
		// just conservative).
		fr.epoch = bp.epoch
	}
	return nil
}

// FlushAll writes back every dirty resident page and fsyncs the file.
// With a write-back hook installed it is two-phase: all page images are
// logged, one barrier makes them durable, then the pages are written —
// amortizing the torn-write protection over the whole flush instead of
// paying a log fsync per page.
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if err := bp.flushLocked(); err != nil {
		return err
	}
	return bp.disk.Sync()
}

// flushLocked writes back every dirty frame under bp.mu, without the
// trailing fsync.
func (bp *BufferPool) flushLocked() error {
	var dirty []*Frame
	for _, fr := range bp.frames {
		if fr.dirty {
			dirty = append(dirty, fr)
		}
	}
	if len(dirty) == 0 {
		return nil
	}
	if bp.hook != nil {
		for _, fr := range dirty {
			if err := bp.hook.PageImage(fr.id, fr.data[:]); err != nil {
				return err
			}
		}
		if err := bp.hook.Barrier(); err != nil {
			return err
		}
	}
	for _, fr := range dirty {
		if err := bp.disk.WritePage(fr.id, fr.data[:]); err != nil {
			return err
		}
		fr.dirty = false
	}
	return nil
}

// DropAll flushes dirty pages (fsyncing the file) and then empties the
// pool, simulating a cold buffer. It fails if any page is still pinned.
func (bp *BufferPool) DropAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for id, fr := range bp.frames {
		if fr.pins > 0 {
			return fmt.Errorf("storage: DropAll with page %d still pinned", id)
		}
	}
	if err := bp.flushLocked(); err != nil {
		return err
	}
	if err := bp.disk.Sync(); err != nil {
		return err
	}
	bp.frames = make(map[PageID]*Frame, bp.cap)
	bp.lru.Init()
	return nil
}

// Stats returns a snapshot of pool activity counters. The counters are
// atomic: Stats never takes the pool lock, so monitoring cannot stall
// concurrent workers.
func (bp *BufferPool) Stats() PoolStats {
	return PoolStats{
		Hits:         bp.hits.Load(),
		Misses:       bp.misses.Load(),
		Evictions:    bp.evictions.Load(),
		Prefetched:   bp.prefetched.Load(),
		PrefetchHits: bp.prefetchHits.Load(),
		Overflows:    bp.overflows.Load(),
		CorruptPages: bp.corrupt.Load(),
	}
}

// ResetStats zeroes the activity counters.
func (bp *BufferPool) ResetStats() {
	bp.hits.Store(0)
	bp.misses.Store(0)
	bp.evictions.Store(0)
	bp.prefetched.Store(0)
	bp.prefetchHits.Store(0)
	bp.overflows.Store(0)
}

// Resident returns the number of pages currently cached.
func (bp *BufferPool) Resident() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return len(bp.frames)
}
