package storage

import (
	"container/list"
	"fmt"
	"sync"
)

// Frame is a buffer-pool slot holding one page image.
type Frame struct {
	id    PageID
	data  [PageSize]byte
	dirty bool
	pins  int
	elem  *list.Element // position in the LRU list when unpinned
}

// ID returns the page id held by the frame.
func (fr *Frame) ID() PageID { return fr.id }

// Data returns the page bytes. The slice is valid while the frame is pinned.
func (fr *Frame) Data() []byte { return fr.data[:] }

// MarkDirty records that the page image was modified and must be written
// back on eviction or flush.
func (fr *Frame) MarkDirty() { fr.dirty = true }

// PoolStats aggregates buffer pool activity.
type PoolStats struct {
	Hits      int64 // requests satisfied without disk I/O
	Misses    int64 // requests that required a physical read
	Evictions int64 // frames written back / recycled
}

// BufferPool caches pages of a single DiskManager with LRU replacement.
// Pages are pinned while in use; unpinned frames are eviction candidates in
// least-recently-used order.
type BufferPool struct {
	mu     sync.Mutex
	disk   *DiskManager
	cap    int
	frames map[PageID]*Frame
	lru    *list.List // of PageID, front = most recently unpinned
	stats  PoolStats
}

// NewBufferPool creates a pool of the given capacity (in pages) over disk.
func NewBufferPool(disk *DiskManager, capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{
		disk:   disk,
		cap:    capacity,
		frames: make(map[PageID]*Frame, capacity),
		lru:    list.New(),
	}
}

// Capacity returns the pool capacity in pages.
func (bp *BufferPool) Capacity() int { return bp.cap }

// Disk returns the underlying disk manager.
func (bp *BufferPool) Disk() *DiskManager { return bp.disk }

// FetchPage pins page id, reading it from disk on a miss.
// The caller must UnpinPage it when done.
func (bp *BufferPool) FetchPage(id PageID) (*Frame, error) {
	bp.mu.Lock()
	if fr, ok := bp.frames[id]; ok {
		bp.stats.Hits++
		bp.pinLocked(fr)
		bp.mu.Unlock()
		return fr, nil
	}
	bp.stats.Misses++
	fr, err := bp.victimLocked(id)
	if err != nil {
		bp.mu.Unlock()
		return nil, err
	}
	// Read outside the lock would allow racing fetches of the same page;
	// keep it simple and correct: the pool lock covers the read. Query
	// processing in this engine is single-threaded per operator tree, and
	// benchmarks measure page counts, so this is not a bottleneck.
	if err := bp.disk.ReadPage(id, fr.data[:]); err != nil {
		// Return the frame to the free pool.
		delete(bp.frames, id)
		fr.pins = 0
		bp.mu.Unlock()
		return nil, err
	}
	bp.mu.Unlock()
	return fr, nil
}

// NewPage allocates a fresh page on disk, pins it, and returns the frame.
func (bp *BufferPool) NewPage() (*Frame, error) {
	id, err := bp.disk.AllocatePage()
	if err != nil {
		return nil, err
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	fr, err := bp.victimLocked(id)
	if err != nil {
		return nil, err
	}
	for i := range fr.data {
		fr.data[i] = 0
	}
	return fr, nil
}

// pinLocked pins an in-pool frame, removing it from the LRU list.
func (bp *BufferPool) pinLocked(fr *Frame) {
	if fr.pins == 0 && fr.elem != nil {
		bp.lru.Remove(fr.elem)
		fr.elem = nil
	}
	fr.pins++
}

// victimLocked obtains a frame for page id (which must not be resident),
// evicting the LRU unpinned page if the pool is full. The returned frame is
// pinned and registered under id, with stale contents.
func (bp *BufferPool) victimLocked(id PageID) (*Frame, error) {
	if len(bp.frames) >= bp.cap {
		back := bp.lru.Back()
		if back == nil {
			return nil, fmt.Errorf("storage: buffer pool exhausted: all %d frames pinned", bp.cap)
		}
		victimID := back.Value.(PageID)
		victim := bp.frames[victimID]
		if victim.dirty {
			if err := bp.disk.WritePage(victim.id, victim.data[:]); err != nil {
				return nil, err
			}
			victim.dirty = false
		}
		bp.lru.Remove(back)
		delete(bp.frames, victimID)
		bp.stats.Evictions++
		victim.id = id
		victim.pins = 1
		victim.elem = nil
		bp.frames[id] = victim
		return victim, nil
	}
	fr := &Frame{id: id, pins: 1}
	bp.frames[id] = fr
	return fr, nil
}

// UnpinPage releases one pin on page id. When the pin count reaches zero the
// frame becomes an eviction candidate.
func (bp *BufferPool) UnpinPage(id PageID) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	fr, ok := bp.frames[id]
	if !ok {
		return fmt.Errorf("storage: unpin of non-resident page %d", id)
	}
	if fr.pins <= 0 {
		return fmt.Errorf("storage: unpin of unpinned page %d", id)
	}
	fr.pins--
	if fr.pins == 0 {
		fr.elem = bp.lru.PushFront(id)
	}
	return nil
}

// FlushAll writes back every dirty resident page.
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for _, fr := range bp.frames {
		if fr.dirty {
			if err := bp.disk.WritePage(fr.id, fr.data[:]); err != nil {
				return err
			}
			fr.dirty = false
		}
	}
	return nil
}

// DropAll flushes dirty pages and then empties the pool, simulating a cold
// buffer. It fails if any page is still pinned.
func (bp *BufferPool) DropAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for id, fr := range bp.frames {
		if fr.pins > 0 {
			return fmt.Errorf("storage: DropAll with page %d still pinned", id)
		}
		if fr.dirty {
			if err := bp.disk.WritePage(fr.id, fr.data[:]); err != nil {
				return err
			}
		}
	}
	bp.frames = make(map[PageID]*Frame, bp.cap)
	bp.lru.Init()
	return nil
}

// Stats returns a snapshot of pool activity counters.
func (bp *BufferPool) Stats() PoolStats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.stats
}

// ResetStats zeroes the activity counters.
func (bp *BufferPool) ResetStats() {
	bp.mu.Lock()
	bp.stats = PoolStats{}
	bp.mu.Unlock()
}

// Resident returns the number of pages currently cached.
func (bp *BufferPool) Resident() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return len(bp.frames)
}
