package storage

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sma/internal/obs"
)

// Frame is a buffer-pool slot holding one page image.
type Frame struct {
	id    PageID
	data  [PageSize]byte
	dirty bool
	pins  int
	elem  *list.Element // position in the LRU list when unpinned

	// loading is non-nil while the page image is being read from disk
	// (outside the pool lock); it is closed when the read completes.
	// Co-fetchers of the same page wait on it instead of issuing a second
	// read. loadErr carries the read error, published before the close.
	loading chan struct{}
	loadErr error

	// prefetched marks a frame whose read was issued by a Prefetcher and
	// that no demand fetch has claimed yet; the first demand hit counts as
	// a prefetch hit and clears the mark.
	prefetched bool
}

// ID returns the page id held by the frame.
func (fr *Frame) ID() PageID { return fr.id }

// Data returns the page bytes. The slice is valid while the frame is pinned.
func (fr *Frame) Data() []byte { return fr.data[:] }

// MarkDirty records that the page image was modified and must be written
// back on eviction or flush.
func (fr *Frame) MarkDirty() { fr.dirty = true }

// PoolStats aggregates buffer pool activity.
type PoolStats struct {
	Hits         int64 // requests satisfied without disk I/O
	Misses       int64 // requests that required a physical read
	Evictions    int64 // frames written back / recycled
	Prefetched   int64 // physical reads issued by prefetchers
	PrefetchHits int64 // demand fetches that landed on a prefetched frame
}

// Add folds another snapshot into s; engines use it to merge the per-table
// pools into one database-wide view.
func (s *PoolStats) Add(o PoolStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Prefetched += o.Prefetched
	s.PrefetchHits += o.PrefetchHits
}

// BufferPool caches pages of a single DiskManager with LRU replacement.
// Pages are pinned while in use; unpinned frames are eviction candidates in
// least-recently-used order.
//
// The pool is safe for concurrent use: parallel partition workers pin
// disjoint (and occasionally shared) pages simultaneously. Physical reads
// happen outside the pool lock so concurrent misses overlap their I/O;
// activity counters are atomic so stat bumps and snapshots never contend
// on the pool mutex.
type BufferPool struct {
	mu     sync.Mutex
	disk   *DiskManager
	cap    int
	frames map[PageID]*Frame
	lru    *list.List // of PageID, front = most recently unpinned

	hits         atomic.Int64
	misses       atomic.Int64
	evictions    atomic.Int64
	prefetched   atomic.Int64
	prefetchHits atomic.Int64

	// Observability hooks, set once via SetObs before the pool sees
	// concurrent traffic. Nil histograms are inert, so the disabled path
	// costs one pointer test per physical read.
	readLatency *obs.Histogram // physical read latency, demand + prefetch
	prefetchOcc *obs.Histogram // prefetch window occupancy per consumed page
}

// SetObs wires the pool's storage metric families. Call it right after
// NewBufferPool, before any fetch: the fields are read without
// synchronization on the hot path.
func (bp *BufferPool) SetObs(m *obs.StorageMetrics) {
	if m == nil {
		return
	}
	bp.readLatency = m.ReadSeconds
	bp.prefetchOcc = m.PrefetchOccupancy
}

// NewBufferPool creates a pool of the given capacity (in pages) over disk.
func NewBufferPool(disk *DiskManager, capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{
		disk:   disk,
		cap:    capacity,
		frames: make(map[PageID]*Frame, capacity),
		lru:    list.New(),
	}
}

// Capacity returns the pool capacity in pages.
func (bp *BufferPool) Capacity() int { return bp.cap }

// Disk returns the underlying disk manager.
func (bp *BufferPool) Disk() *DiskManager { return bp.disk }

// FetchPage pins page id, reading it from disk on a miss.
// The caller must UnpinPage it when done.
func (bp *BufferPool) FetchPage(id PageID) (*Frame, error) {
	fr, _, err := bp.fetch(id, false)
	return fr, err
}

// fetch implements FetchPage. prefetch marks the frame on a miss so the
// first later demand hit can be attributed to readahead; missed reports
// whether this call issued the physical read.
func (bp *BufferPool) fetch(id PageID, prefetch bool) (*Frame, bool, error) {
	bp.mu.Lock()
	if fr, ok := bp.frames[id]; ok {
		bp.hits.Add(1)
		if !prefetch && fr.prefetched {
			fr.prefetched = false
			bp.prefetchHits.Add(1)
		}
		bp.pinLocked(fr)
		loading := fr.loading
		bp.mu.Unlock()
		if loading != nil {
			// Another goroutine is reading this page; wait for it. On
			// failure the loader already deregistered the frame and zeroed
			// its pins, so there is nothing to unpin here.
			<-loading
			if fr.loadErr != nil {
				return nil, false, fr.loadErr
			}
		}
		return fr, false, nil
	}
	bp.misses.Add(1)
	fr, err := bp.victimLocked(id)
	if err != nil {
		bp.mu.Unlock()
		return nil, false, err
	}
	// Read outside the lock so concurrent misses on different pages overlap
	// their I/O. The frame is registered and pinned with an open loading
	// channel: co-fetchers of the same page wait on it rather than racing a
	// second read, and the pin keeps the frame off the eviction list.
	loading := make(chan struct{})
	fr.loading = loading
	fr.loadErr = nil
	fr.prefetched = prefetch
	if prefetch {
		bp.prefetched.Add(1)
	}
	bp.mu.Unlock()

	if bp.readLatency != nil {
		t0 := time.Now()
		err = bp.disk.ReadPage(id, fr.data[:])
		bp.readLatency.ObserveDuration(time.Since(t0))
	} else {
		err = bp.disk.ReadPage(id, fr.data[:])
	}
	bp.mu.Lock()
	if err != nil {
		// Discard the frame; waiters observe loadErr and give up their pins
		// collectively (the frame is no longer resident).
		delete(bp.frames, id)
		fr.pins = 0
		fr.loadErr = err
	}
	fr.loading = nil
	bp.mu.Unlock()
	close(loading)
	if err != nil {
		return nil, false, err
	}
	return fr, true, nil
}

// NewPage allocates a fresh page on disk, pins it, and returns the frame.
func (bp *BufferPool) NewPage() (*Frame, error) {
	id, err := bp.disk.AllocatePage()
	if err != nil {
		return nil, err
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	fr, err := bp.victimLocked(id)
	if err != nil {
		return nil, err
	}
	for i := range fr.data {
		fr.data[i] = 0
	}
	return fr, nil
}

// pinLocked pins an in-pool frame, removing it from the LRU list.
func (bp *BufferPool) pinLocked(fr *Frame) {
	if fr.pins == 0 && fr.elem != nil {
		bp.lru.Remove(fr.elem)
		fr.elem = nil
	}
	fr.pins++
}

// victimLocked obtains a frame for page id (which must not be resident),
// evicting the LRU unpinned page if the pool is full. The returned frame is
// pinned and registered under id, with stale contents.
func (bp *BufferPool) victimLocked(id PageID) (*Frame, error) {
	if len(bp.frames) >= bp.cap {
		back := bp.lru.Back()
		if back == nil {
			return nil, fmt.Errorf("storage: buffer pool exhausted: all %d frames pinned", bp.cap)
		}
		victimID := back.Value.(PageID)
		victim := bp.frames[victimID]
		if victim.dirty {
			if err := bp.disk.WritePage(victim.id, victim.data[:]); err != nil {
				return nil, err
			}
			victim.dirty = false
		}
		bp.lru.Remove(back)
		delete(bp.frames, victimID)
		bp.evictions.Add(1)
		victim.id = id
		victim.pins = 1
		victim.elem = nil
		victim.loading = nil
		victim.loadErr = nil
		victim.prefetched = false
		bp.frames[id] = victim
		return victim, nil
	}
	fr := &Frame{id: id, pins: 1}
	bp.frames[id] = fr
	return fr, nil
}

// UnpinPage releases one pin on page id. When the pin count reaches zero the
// frame becomes an eviction candidate.
func (bp *BufferPool) UnpinPage(id PageID) error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	fr, ok := bp.frames[id]
	if !ok {
		return fmt.Errorf("storage: unpin of non-resident page %d", id)
	}
	if fr.pins <= 0 {
		return fmt.Errorf("storage: unpin of unpinned page %d", id)
	}
	fr.pins--
	if fr.pins == 0 {
		fr.elem = bp.lru.PushFront(id)
	}
	return nil
}

// FlushAll writes back every dirty resident page.
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for _, fr := range bp.frames {
		if fr.dirty {
			if err := bp.disk.WritePage(fr.id, fr.data[:]); err != nil {
				return err
			}
			fr.dirty = false
		}
	}
	return nil
}

// DropAll flushes dirty pages and then empties the pool, simulating a cold
// buffer. It fails if any page is still pinned.
func (bp *BufferPool) DropAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for id, fr := range bp.frames {
		if fr.pins > 0 {
			return fmt.Errorf("storage: DropAll with page %d still pinned", id)
		}
		if fr.dirty {
			if err := bp.disk.WritePage(fr.id, fr.data[:]); err != nil {
				return err
			}
		}
	}
	bp.frames = make(map[PageID]*Frame, bp.cap)
	bp.lru.Init()
	return nil
}

// Stats returns a snapshot of pool activity counters. The counters are
// atomic: Stats never takes the pool lock, so monitoring cannot stall
// concurrent workers.
func (bp *BufferPool) Stats() PoolStats {
	return PoolStats{
		Hits:         bp.hits.Load(),
		Misses:       bp.misses.Load(),
		Evictions:    bp.evictions.Load(),
		Prefetched:   bp.prefetched.Load(),
		PrefetchHits: bp.prefetchHits.Load(),
	}
}

// ResetStats zeroes the activity counters.
func (bp *BufferPool) ResetStats() {
	bp.hits.Store(0)
	bp.misses.Store(0)
	bp.evictions.Store(0)
	bp.prefetched.Store(0)
	bp.prefetchHits.Store(0)
}

// Resident returns the number of pages currently cached.
func (bp *BufferPool) Resident() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return len(bp.frames)
}
