package storage

import (
	"path/filepath"
	"sync"
	"testing"
)

// TestBufferPoolConcurrentPins hammers a small pool from many goroutines —
// far more pages than frames, heavy co-fetching of the same hot pages —
// and checks that every fetch observes the right page image, that the
// atomic activity counters account for every fetch, and (under -race)
// that the out-of-lock read path is race-free.
func TestBufferPoolConcurrentPins(t *testing.T) {
	dm, err := OpenDiskManager(filepath.Join(t.TempDir(), "t.pages"))
	if err != nil {
		t.Fatal(err)
	}
	defer dm.Close()

	const numPages = 64
	var buf [PageSize]byte
	for p := 0; p < numPages; p++ {
		for i := range buf {
			buf[i] = byte(p)
		}
		if err := dm.WritePage(PageID(p), buf[:]); err != nil {
			t.Fatal(err)
		}
	}

	const poolCap = 16
	bp := NewBufferPool(dm, poolCap)

	const (
		workers       = 8
		fetchesPerWkr = 2000
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < fetchesPerWkr; i++ {
				// Workers interleave a shared hot page (co-fetch pressure)
				// with worker-local strides (eviction pressure).
				id := PageID((w*7 + i*13) % numPages)
				if i%5 == 0 {
					id = PageID(i % 4)
				}
				fr, err := bp.FetchPage(id)
				if err != nil {
					errs <- err
					return
				}
				d := fr.Data()
				if d[0] != byte(id) || d[PageSize-1] != byte(id) {
					t.Errorf("page %d: wrong image (got %d..%d)", id, d[0], d[PageSize-1])
				}
				if err := bp.UnpinPage(id); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := bp.Stats()
	if total := st.Hits + st.Misses; total != workers*fetchesPerWkr {
		t.Errorf("hits %d + misses %d = %d, want %d fetches accounted",
			st.Hits, st.Misses, total, workers*fetchesPerWkr)
	}
	if st.Misses < numPages {
		t.Errorf("misses = %d, want at least one per page (%d)", st.Misses, numPages)
	}
	if got := bp.Resident(); got > poolCap {
		t.Errorf("resident = %d exceeds capacity %d", got, poolCap)
	}
	// Every frame must be unpinned again: DropAll fails on pinned pages.
	if err := bp.DropAll(); err != nil {
		t.Errorf("DropAll after stress: %v", err)
	}
}
