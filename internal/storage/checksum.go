package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Page checksums. Bytes 4-7 of the reserved page header hold a CRC-32C
// (Castagnoli, the same codec the WAL frames records with) over the rest
// of the page. The disk manager stamps it on every write-back and the
// buffer pool verifies it on every physical read, so a bit flip or torn
// write surfaces as a typed error at the page that suffered it instead
// of as silently wrong query results.
//
// A stored checksum of zero means "unstamped": pages written before
// checksums existed verify clean, which lets old databases open without
// a rewrite pass. pageCRC never returns zero (it maps 0 to 1), so a
// stamped page can always be distinguished from an unstamped one.
const pageCRCOffset = 4

var pageCRCTable = crc32.MakeTable(crc32.Castagnoli)

// pageCRC computes the checksum of a page image, skipping the four bytes
// that store the checksum itself.
func pageCRC(data []byte) uint32 {
	crc := crc32.Update(0, pageCRCTable, data[:pageCRCOffset])
	crc = crc32.Update(crc, pageCRCTable, data[pageCRCOffset+4:])
	if crc == 0 {
		crc = 1
	}
	return crc
}

// StampPage writes the page checksum into the header of data, which must
// be a full page image.
func StampPage(data []byte) {
	binary.LittleEndian.PutUint32(data[pageCRCOffset:pageCRCOffset+4], pageCRC(data))
}

// VerifyPage reports whether the page image's stored checksum matches its
// content. Unstamped pages (stored checksum zero) verify clean.
func VerifyPage(data []byte) bool {
	stored := binary.LittleEndian.Uint32(data[pageCRCOffset : pageCRCOffset+4])
	if stored == 0 {
		return true
	}
	return stored == pageCRC(data)
}

// CorruptPageError reports a page whose checksum did not match its
// content. The page is quarantined: later fetches fail fast with the
// same error without re-reading the disk.
type CorruptPageError struct {
	Path string
	Page PageID
}

func (e *CorruptPageError) Error() string {
	return fmt.Sprintf("storage: page %d of %s failed checksum verification", e.Page, e.Path)
}

// IsCorrupt reports whether err is (or wraps) a CorruptPageError.
func IsCorrupt(err error) bool {
	var ce *CorruptPageError
	return errors.As(err, &ce)
}
