package storage

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestStampVerifyRoundTrip(t *testing.T) {
	var page [PageSize]byte
	for i := range page {
		page[i] = byte(i * 7)
	}
	StampPage(page[:])
	if !VerifyPage(page[:]) {
		t.Fatal("freshly stamped page failed verification")
	}
	page[100] ^= 0x40
	if VerifyPage(page[:]) {
		t.Fatal("bit flip not detected")
	}
	page[100] ^= 0x40
	if !VerifyPage(page[:]) {
		t.Fatal("restored page failed verification")
	}
	// An unstamped page (checksum bytes zero) must verify clean: databases
	// written before checksums existed open without a rewrite pass.
	var legacy [PageSize]byte
	for i := range legacy {
		legacy[i] = byte(i)
	}
	legacy[pageCRCOffset] = 0
	legacy[pageCRCOffset+1] = 0
	legacy[pageCRCOffset+2] = 0
	legacy[pageCRCOffset+3] = 0
	if !VerifyPage(legacy[:]) {
		t.Fatal("unstamped legacy page rejected")
	}
}

// corruptPageByte flips one byte of a page directly in the file,
// bypassing WritePage (which would restamp the checksum).
func corruptPageByte(t *testing.T, path string, page PageID, off int) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	pos := int64(page)*PageSize + int64(off)
	var b [1]byte
	if _, err := f.ReadAt(b[:], pos); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], pos); err != nil {
		t.Fatal(err)
	}
}

func TestPoolQuarantinesCorruptPage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.tbl")
	d, err := OpenDiskManager(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var page [PageSize]byte
	for i := range page {
		page[i] = byte(i * 3)
	}
	for id := PageID(0); id < 3; id++ {
		if err := d.WritePage(id, page[:]); err != nil {
			t.Fatal(err)
		}
	}
	corruptPageByte(t, path, 1, 2000)

	bp := NewBufferPool(d, 4)
	var notified []PageID
	bp.SetCorruptionHandler(func(id PageID) { notified = append(notified, id) })

	// Healthy pages fetch fine.
	for _, id := range []PageID{0, 2} {
		fr, err := bp.FetchPage(id)
		if err != nil {
			t.Fatalf("fetch page %d: %v", id, err)
		}
		if err := bp.UnpinPage(fr.ID()); err != nil {
			t.Fatal(err)
		}
	}

	// The corrupt page fails with a typed error and is quarantined.
	if _, err := bp.FetchPage(1); !IsCorrupt(err) {
		t.Fatalf("fetch of corrupt page: got %v, want CorruptPageError", err)
	}
	var ce *CorruptPageError
	_, err = bp.FetchPage(1)
	if !errors.As(err, &ce) || ce.Page != 1 {
		t.Fatalf("second fetch: got %v", err)
	}
	reads, _ := d.Stats()
	if _, err := bp.FetchPage(1); !IsCorrupt(err) {
		t.Fatalf("third fetch: got %v", err)
	}
	if r2, _ := d.Stats(); r2 != reads {
		t.Fatalf("quarantined fetch re-read the disk: %d -> %d reads", reads, r2)
	}
	if got := bp.Stats().CorruptPages; got != 1 {
		t.Fatalf("CorruptPages = %d, want 1", got)
	}
	if len(notified) != 1 || notified[0] != 1 {
		t.Fatalf("corruption handler calls = %v, want [1]", notified)
	}
	if q := bp.Quarantined(); len(q) != 1 || q[0] != 1 {
		t.Fatalf("Quarantined() = %v, want [1]", q)
	}
}

func TestPoolVerifyDisabledAcceptsCorruptPage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.tbl")
	d, err := OpenDiskManager(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var page [PageSize]byte
	if err := d.WritePage(0, page[:]); err != nil {
		t.Fatal(err)
	}
	corruptPageByte(t, path, 0, 512)

	bp := NewBufferPool(d, 2)
	bp.SetVerifyReads(false)
	fr, err := bp.FetchPage(0)
	if err != nil {
		t.Fatalf("fetch with verification off: %v", err)
	}
	if err := bp.UnpinPage(fr.ID()); err != nil {
		t.Fatal(err)
	}
}
