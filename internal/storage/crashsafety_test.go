package storage

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"sma/internal/tuple"
)

// recordingHook records write-back interception order.
type recordingHook struct {
	events []string // "image:<page>" and "barrier"
	fail   error
}

func (h *recordingHook) PageImage(id PageID, data []byte) error {
	if h.fail != nil {
		return h.fail
	}
	h.events = append(h.events, fmt.Sprintf("image:%d", id))
	return nil
}

func (h *recordingHook) Barrier() error {
	if h.fail != nil {
		return h.fail
	}
	h.events = append(h.events, "barrier")
	return nil
}

func fillPage(dm *DiskManager, t *testing.T, n int) {
	t.Helper()
	var page [PageSize]byte
	for i := 0; i < n; i++ {
		page[pageHeaderSize] = byte(i)
		if err := dm.WritePage(PageID(i), page[:]); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBarrierProtectsDirtyFrames(t *testing.T) {
	dm := newDisk(t)
	fillPage(dm, t, 4)
	bp := NewBufferPool(dm, 2)

	bp.BeginBarrier()
	// Dirty page 0 under the barrier and keep it unpinned.
	fr, err := bp.FetchPage(0)
	if err != nil {
		t.Fatal(err)
	}
	fr.Data()[pageHeaderSize+1] = 0xEE
	fr.MarkDirty()
	if err := bp.UnpinPage(0); err != nil {
		t.Fatal(err)
	}

	// Fill the pool: page 1 takes the free frame, page 2 must evict. The
	// only unpinned frame (page 0) was dirtied by the current statement,
	// so under the barrier the clean page-1 frame is chosen once unpinned.
	if _, err := bp.FetchPage(1); err != nil {
		t.Fatal(err)
	}
	if err := bp.UnpinPage(1); err != nil {
		t.Fatal(err)
	}
	if _, err := bp.FetchPage(2); err != nil {
		t.Fatal(err)
	}
	if _, writes := dm.Stats(); writes != 4 {
		t.Fatalf("barrier let a dirty page reach disk (%d writes)", writes)
	}
	// Page 0's dirty frame must still be resident with its modification.
	fr0, err := bp.FetchPage(0)
	if err != nil {
		t.Fatal(err)
	}
	if fr0.Data()[pageHeaderSize+1] != 0xEE {
		t.Fatal("dirty frame lost under barrier")
	}
	if err := bp.UnpinPage(0); err != nil {
		t.Fatal(err)
	}
	if err := bp.UnpinPage(2); err != nil {
		t.Fatal(err)
	}

	// With only current-statement-dirty unpinned frames left, the pool
	// overflows rather than stealing: the fetch succeeds, no page reaches
	// disk, and the pool grows past capacity.
	fr2, err := bp.FetchPage(2)
	if err != nil {
		t.Fatal(err)
	}
	fr2.MarkDirty()
	if err := bp.UnpinPage(2); err != nil {
		t.Fatal(err)
	}
	if _, err := bp.FetchPage(3); err != nil {
		t.Fatalf("fetch under full barrier: %v", err)
	}
	if err := bp.UnpinPage(3); err != nil {
		t.Fatal(err)
	}
	if _, writes := dm.Stats(); writes != 4 {
		t.Fatalf("overflow stole a dirty frame (%d writes)", writes)
	}
	if got, ovf := bp.Resident(), bp.Stats().Overflows; got != 3 || ovf != 1 {
		t.Fatalf("resident = %d, overflows = %d", got, ovf)
	}
	bp.EndBarrier()
	// Trim wrote the excess back and returned the pool to capacity.
	if bp.Resident() != 2 {
		t.Fatalf("resident after trim = %d", bp.Resident())
	}
	if _, writes := dm.Stats(); writes == 4 {
		t.Fatal("trim did not write back dirty overflow")
	}
}

// TestBarrierAllowsCommittedDirt checks that a frame dirtied before the
// barrier went up — i.e. by an earlier, committed statement — remains an
// eviction candidate, so long statements in small pools don't starve on
// dirt they didn't create.
func TestBarrierAllowsCommittedDirt(t *testing.T) {
	dm := newDisk(t)
	fillPage(dm, t, 3)
	bp := NewBufferPool(dm, 2)

	// Dirty page 0 outside any barrier (a committed statement's dirt).
	fr, err := bp.FetchPage(0)
	if err != nil {
		t.Fatal(err)
	}
	fr.Data()[pageHeaderSize+1] = 0xEE
	fr.MarkDirty()
	if err := bp.UnpinPage(0); err != nil {
		t.Fatal(err)
	}

	bp.BeginBarrier()
	defer bp.EndBarrier()
	if _, err := bp.FetchPage(1); err != nil {
		t.Fatal(err)
	}
	if err := bp.UnpinPage(1); err != nil {
		t.Fatal(err)
	}
	// Pool full; page 0 is LRU and its dirt predates the barrier, so the
	// fetch evicts it through the normal write-back path.
	if _, err := bp.FetchPage(2); err != nil {
		t.Fatalf("committed dirt blocked eviction under barrier: %v", err)
	}
	if err := bp.UnpinPage(2); err != nil {
		t.Fatal(err)
	}
	fr0, err := bp.FetchPage(0)
	if err != nil {
		t.Fatal(err)
	}
	if fr0.Data()[pageHeaderSize+1] != 0xEE {
		t.Fatal("committed dirt lost on eviction write-back")
	}
	if err := bp.UnpinPage(0); err != nil {
		t.Fatal(err)
	}
}

func TestWriteBackHookOrdering(t *testing.T) {
	dm := newDisk(t)
	fillPage(dm, t, 3)
	bp := NewBufferPool(dm, 3)
	hook := &recordingHook{}
	bp.SetWriteBackHook(hook)

	for id := PageID(0); id < 3; id++ {
		fr, err := bp.FetchPage(id)
		if err != nil {
			t.Fatal(err)
		}
		fr.MarkDirty()
		if err := bp.UnpinPage(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Two-phase: all images first, then exactly one barrier.
	if len(hook.events) != 4 || hook.events[3] != "barrier" {
		t.Fatalf("flush events = %v", hook.events)
	}
	for _, ev := range hook.events[:3] {
		if ev == "barrier" {
			t.Fatalf("barrier before all images: %v", hook.events)
		}
	}

	// Eviction write-back: image + barrier before the write.
	hook.events = nil
	fr, err := bp.FetchPage(0)
	if err != nil {
		t.Fatal(err)
	}
	fr.MarkDirty()
	if err := bp.UnpinPage(0); err != nil {
		t.Fatal(err)
	}
	for id := PageID(1); id < 3; id++ { // make page 0 the LRU victim
		if _, err := bp.FetchPage(id); err != nil {
			t.Fatal(err)
		}
		if err := bp.UnpinPage(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := dm.AllocatePage(); err != nil {
		t.Fatal(err)
	}
	if _, err := bp.FetchPage(3); err != nil {
		t.Fatal(err)
	}
	want := []string{"image:0", "barrier"}
	if len(hook.events) != 2 || hook.events[0] != want[0] || hook.events[1] != want[1] {
		t.Fatalf("eviction events = %v, want %v", hook.events, want)
	}

	// A failing hook blocks the write-back entirely.
	hook.fail = errors.New("log full")
	fr, err = bp.FetchPage(3)
	if err != nil {
		t.Fatal(err)
	}
	fr.MarkDirty()
	if err := bp.UnpinPage(3); err != nil {
		t.Fatal(err)
	}
	_, before := dm.Stats()
	if err := bp.FlushAll(); err == nil {
		t.Fatal("FlushAll ignored hook failure")
	}
	if _, after := dm.Stats(); after != before {
		t.Fatal("page written despite hook failure")
	}
}

func TestFlushAllSyncs(t *testing.T) {
	dm := newDisk(t)
	fillPage(dm, t, 1)
	bp := NewBufferPool(dm, 2)
	fr, err := bp.FetchPage(0)
	if err != nil {
		t.Fatal(err)
	}
	fr.MarkDirty()
	if err := bp.UnpinPage(0); err != nil {
		t.Fatal(err)
	}
	before := dm.Syncs()
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if dm.Syncs() != before+1 {
		t.Fatalf("FlushAll did not fsync (syncs %d -> %d)", before, dm.Syncs())
	}
	if err := bp.DropAll(); err != nil {
		t.Fatal(err)
	}
	if dm.Syncs() != before+2 {
		t.Fatalf("DropAll did not fsync")
	}
}

func TestFaultInjection(t *testing.T) {
	dm := newDisk(t)
	fillPage(dm, t, 2)
	boom := errors.New("boom")
	var ops []string
	dm.SetFault(func(op string, page PageID) error {
		ops = append(ops, fmt.Sprintf("%s:%d", op, page))
		if op == "sync" {
			return boom
		}
		return nil
	})
	var page [PageSize]byte
	if err := dm.ReadPage(0, page[:]); err != nil {
		t.Fatal(err)
	}
	if err := dm.Sync(); !errors.Is(err, boom) {
		t.Fatalf("Sync = %v, want injected fault", err)
	}
	if len(ops) != 2 || ops[0] != "read:0" || ops[1] != "sync:-1" {
		t.Fatalf("ops = %v", ops)
	}
	dm.SetFault(func(op string, page PageID) error { return boom })
	if err := dm.WritePage(0, page[:]); !errors.Is(err, boom) {
		t.Fatalf("WritePage = %v, want injected fault", err)
	}
	dm.SetFault(nil)
	if err := dm.WritePage(0, page[:]); err != nil {
		t.Fatalf("after clearing fault: %v", err)
	}
}

func TestDiskTruncate(t *testing.T) {
	dm := newDisk(t)
	fillPage(dm, t, 5)
	if err := dm.Truncate(2); err != nil {
		t.Fatal(err)
	}
	if dm.NumPages() != 2 {
		t.Fatalf("NumPages = %d", dm.NumPages())
	}
	var page [PageSize]byte
	if err := dm.ReadPage(2, page[:]); err == nil {
		t.Fatal("read of truncated page succeeded")
	}
	if err := dm.Truncate(3); err == nil {
		t.Fatal("truncate past EOF succeeded")
	}
}

func crashHeap(t *testing.T, bucketPages int) (*HeapFile, *tuple.Schema) {
	t.Helper()
	dm, err := OpenDiskManager(filepath.Join(t.TempDir(), "h.pages"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dm.Close() })
	schema := tuple.MustSchema([]tuple.Column{{Name: "N", Type: tuple.TInt64}})
	h, err := NewHeapFile(NewBufferPool(dm, 8), schema, bucketPages)
	if err != nil {
		t.Fatal(err)
	}
	return h, schema
}

func TestTailRestore(t *testing.T) {
	h, schema := crashHeap(t, 1)
	mk := func(n int64) tuple.Tuple {
		tp := tuple.NewTuple(schema)
		tp.SetInt64(0, n)
		return tp
	}
	per := h.RecordsPerPage()
	for i := 0; i < per+3; i++ { // one full page plus a partial second
		if _, err := h.Append(mk(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	ts, err := h.Tail()
	if err != nil {
		t.Fatal(err)
	}
	if ts.Pages != 2 || ts.LastCount != 3 {
		t.Fatalf("tail = %+v", ts)
	}
	// Append across a page boundary, then roll back.
	for i := 0; i < per; i++ {
		if _, err := h.Append(mk(1000 + int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if h.NumPages() != 3 {
		t.Fatalf("pages = %d", h.NumPages())
	}
	if err := h.RestoreTail(ts); err != nil {
		t.Fatal(err)
	}
	if h.NumPages() != 2 {
		t.Fatalf("pages after restore = %d", h.NumPages())
	}
	n, err := h.NumRecords()
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(per+3) {
		t.Fatalf("records after restore = %d, want %d", n, per+3)
	}
	var got []int64
	err = h.Scan(func(tp tuple.Tuple, rid RID) error {
		got = append(got, tp.Int64(0))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("record %d = %d after rollback", i, v)
		}
	}
}

func TestApplyAtIdempotent(t *testing.T) {
	h, schema := crashHeap(t, 1)
	img := tuple.NewTuple(schema)
	img.SetInt64(0, 42)
	rid := RID{Page: 2, Slot: 1}
	for i := 0; i < 3; i++ { // replay may run more than once
		if err := h.ApplyAt(rid, img.Data); err != nil {
			t.Fatal(err)
		}
	}
	if h.NumPages() != 3 {
		t.Fatalf("pages = %d", h.NumPages())
	}
	got, err := h.Get(rid)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64(0) != 42 {
		t.Fatalf("value = %d", got.Int64(0))
	}
	// Slot 0 of page 2 is unwritten: count covers it, content is zero.
	z, err := h.Get(RID{Page: 2, Slot: 0})
	if err != nil {
		t.Fatal(err)
	}
	if z.Int64(0) != 0 {
		t.Fatalf("hole = %d", z.Int64(0))
	}
	if err := h.ApplyAt(rid, make([]byte, 3)); err == nil {
		t.Fatal("short image accepted")
	}
}

func TestRestorePageRoundTrip(t *testing.T) {
	h, schema := crashHeap(t, 1)
	tp := tuple.NewTuple(schema)
	tp.SetInt64(0, 7)
	if _, err := h.Append(tp); err != nil {
		t.Fatal(err)
	}
	fr, err := h.Pool().FetchPage(0)
	if err != nil {
		t.Fatal(err)
	}
	snap := append([]byte(nil), fr.Data()...)
	if err := h.Pool().UnpinPage(0); err != nil {
		t.Fatal(err)
	}
	// Corrupt the page, then restore the image.
	fr, err = h.Pool().FetchPage(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fr.Data() {
		fr.Data()[i] = 0xFF
	}
	fr.MarkDirty()
	if err := h.Pool().UnpinPage(0); err != nil {
		t.Fatal(err)
	}
	if err := h.RestorePage(0, snap); err != nil {
		t.Fatal(err)
	}
	fr, err = h.Pool().FetchPage(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fr.Data(), snap) {
		t.Fatal("restored page differs from image")
	}
	if err := h.Pool().UnpinPage(0); err != nil {
		t.Fatal(err)
	}
}

func TestUndeleteAndApplyDelete(t *testing.T) {
	h, schema := crashHeap(t, 1)
	tp := tuple.NewTuple(schema)
	tp.SetInt64(0, 9)
	rid, err := h.Append(tp)
	if err != nil {
		t.Fatal(err)
	}
	if h.Undelete(rid) {
		t.Fatal("undelete of live record reported true")
	}
	if _, err := h.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if !h.Undelete(rid) {
		t.Fatal("undelete of deleted record reported false")
	}
	if _, err := h.Get(rid); err != nil {
		t.Fatalf("record still dead after undelete: %v", err)
	}
	h.ApplyDelete(rid)
	h.ApplyDelete(rid) // idempotent
	if _, err := h.Get(rid); err == nil {
		t.Fatal("record live after ApplyDelete")
	}
	if h.DeleteVector().Len() != 1 {
		t.Fatalf("vector len = %d", h.DeleteVector().Len())
	}
}
