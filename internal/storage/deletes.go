package storage

import (
	"encoding/binary"
	"fmt"
	"os"
	"sort"

	"sma/internal/tuple"
)

// DeleteVector records deleted RIDs as a sidecar structure, leaving the
// fixed-width page layout untouched (the positional SMA↔bucket
// correspondence must survive deletes). Scans skip marked records; SMA
// maintenance observes deletions through HeapFile.Delete's return value.
// This mirrors the delete-vector design of modern analytic stores and
// keeps the paper's "cheap to maintain" property: a delete touches one
// page (to read the old record) plus the in-memory vector.
type DeleteVector struct {
	dead map[int64]struct{}
}

// NewDeleteVector creates an empty vector.
func NewDeleteVector() *DeleteVector {
	return &DeleteVector{dead: make(map[int64]struct{})}
}

// ordinal flattens a RID using the heap's records-per-page factor.
func ordinal(rid RID, perPage int) int64 {
	return int64(rid.Page)*int64(perPage) + int64(rid.Slot)
}

// Len returns the number of deleted records.
func (dv *DeleteVector) Len() int { return len(dv.dead) }

// markDeleted records rid; reports whether it was newly marked.
func (dv *DeleteVector) markDeleted(rid RID, perPage int) bool {
	o := ordinal(rid, perPage)
	if _, dup := dv.dead[o]; dup {
		return false
	}
	dv.dead[o] = struct{}{}
	return true
}

// isDeleted reports whether rid is marked.
func (dv *DeleteVector) isDeleted(rid RID, perPage int) bool {
	_, ok := dv.dead[ordinal(rid, perPage)]
	return ok
}

// deleteVectorMagic heads the on-disk encoding.
var deleteVectorMagic = [4]byte{'S', 'D', 'E', 'L'}

// Save writes the vector to path (sorted ordinals, little endian). The
// write goes through a fsynced temporary file renamed into place, so a
// crash mid-save leaves either the old vector or the new one — never a
// torn file.
func (dv *DeleteVector) Save(path string) error {
	ords := make([]int64, 0, len(dv.dead))
	for o := range dv.dead {
		ords = append(ords, o)
	}
	sort.Slice(ords, func(i, j int) bool { return ords[i] < ords[j] })
	buf := make([]byte, 0, 8+8*len(ords))
	buf = append(buf, deleteVectorMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ords)))
	for _, o := range ords {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(o))
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadDeleteVector reads a vector saved by Save; a missing file yields an
// empty vector.
func LoadDeleteVector(path string) (*DeleteVector, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return NewDeleteVector(), nil
	}
	if err != nil {
		return nil, err
	}
	if len(raw) < 8 || [4]byte(raw[:4]) != deleteVectorMagic {
		return nil, fmt.Errorf("storage: %s is not a delete vector", path)
	}
	n := int(binary.LittleEndian.Uint32(raw[4:]))
	if len(raw) < 8+8*n {
		return nil, fmt.Errorf("storage: truncated delete vector %s", path)
	}
	dv := NewDeleteVector()
	for i := 0; i < n; i++ {
		dv.dead[int64(binary.LittleEndian.Uint64(raw[8+8*i:]))] = struct{}{}
	}
	return dv, nil
}

// SetDeleteVector attaches a delete vector to the heap (nil detaches).
func (h *HeapFile) SetDeleteVector(dv *DeleteVector) { h.deletes = dv }

// DeleteVector returns the attached vector (nil when deletes are disabled).
func (h *HeapFile) DeleteVector() *DeleteVector { return h.deletes }

// Delete marks the record at rid as deleted and returns its prior image so
// callers can maintain SMAs. Deleting an already-deleted or out-of-range
// record fails.
func (h *HeapFile) Delete(rid RID) (old tuple.Tuple, err error) {
	if h.deletes == nil {
		h.deletes = NewDeleteVector()
	}
	t, err := h.Get(rid)
	if err != nil {
		return tuple.Tuple{}, err
	}
	if !h.deletes.markDeleted(rid, h.perPage) {
		return tuple.Tuple{}, fmt.Errorf("storage: record %v is already deleted", rid)
	}
	return t, nil
}

// unmark clears rid's deletion mark; reports whether it was marked.
func (dv *DeleteVector) unmark(rid RID, perPage int) bool {
	o := ordinal(rid, perPage)
	if _, ok := dv.dead[o]; !ok {
		return false
	}
	delete(dv.dead, o)
	return true
}

// Undelete clears the deletion mark on rid, reversing a Delete during
// statement rollback. It reports whether the record was marked.
func (h *HeapFile) Undelete(rid RID) bool {
	if h.deletes == nil {
		return false
	}
	return h.deletes.unmark(rid, h.perPage)
}

// ApplyDelete marks rid deleted without reading the old record — the
// idempotent redo used by WAL replay (re-deleting an already-marked
// record is a no-op, not an error).
func (h *HeapFile) ApplyDelete(rid RID) {
	if h.deletes == nil {
		h.deletes = NewDeleteVector()
	}
	h.deletes.markDeleted(rid, h.perPage)
}

// isLive reports whether rid is not deleted.
func (h *HeapFile) isLive(rid RID) bool {
	return h.deletes == nil || !h.deletes.isDeleted(rid, h.perPage)
}
