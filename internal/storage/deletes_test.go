package storage

import (
	"path/filepath"
	"testing"

	"sma/internal/tuple"
)

func TestDeleteBasics(t *testing.T) {
	h := newHeap(t, 1, 32)
	tp := tuple.NewTuple(h.Schema())
	var rids []RID
	for i := 0; i < 100; i++ {
		tp.SetInt64(0, int64(i))
		rid, err := h.Append(tp)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	old, err := h.Delete(rids[10])
	if err != nil {
		t.Fatal(err)
	}
	if old.Int64(0) != 10 {
		t.Errorf("Delete returned %d, want the prior image 10", old.Int64(0))
	}
	if _, err := h.Delete(rids[10]); err == nil {
		t.Errorf("double delete should fail")
	}
	if _, err := h.Get(rids[10]); err == nil {
		t.Errorf("Get of deleted record should fail")
	}
	n, err := h.NumRecords()
	if err != nil {
		t.Fatal(err)
	}
	if n != 99 {
		t.Errorf("NumRecords = %d, want 99", n)
	}
	// Scans skip the deleted record.
	seen := map[int64]bool{}
	if err := h.Scan(func(tp tuple.Tuple, _ RID) error {
		seen[tp.Int64(0)] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if seen[10] {
		t.Errorf("scan returned the deleted record")
	}
	if len(seen) != 99 {
		t.Errorf("scan saw %d records", len(seen))
	}
}

func TestDeleteCursorSkips(t *testing.T) {
	h := newHeap(t, 1, 32)
	tp := tuple.NewTuple(h.Schema())
	var rids []RID
	for i := 0; i < 10; i++ {
		tp.SetInt64(0, int64(i))
		rid, err := h.Append(tp)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	for _, i := range []int{0, 3, 9} {
		if _, err := h.Delete(rids[i]); err != nil {
			t.Fatal(err)
		}
	}
	cur, err := h.OpenPage(0)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	var got []int64
	for {
		rec, ok := cur.Next()
		if !ok {
			break
		}
		got = append(got, rec.Int64(0))
	}
	want := []int64{1, 2, 4, 5, 6, 7, 8}
	if len(got) != len(want) {
		t.Fatalf("cursor returned %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cursor returned %v, want %v", got, want)
		}
	}
}

func TestDeleteVectorPersistence(t *testing.T) {
	dv := NewDeleteVector()
	rids := []RID{{Page: 0, Slot: 1}, {Page: 5, Slot: 0}, {Page: 5, Slot: 7}}
	for _, rid := range rids {
		if !dv.markDeleted(rid, 100) {
			t.Fatalf("mark %v failed", rid)
		}
	}
	path := filepath.Join(t.TempDir(), "t.del")
	if err := dv.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDeleteVector(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 3 {
		t.Fatalf("loaded %d entries", back.Len())
	}
	for _, rid := range rids {
		if !back.isDeleted(rid, 100) {
			t.Errorf("%v lost in round trip", rid)
		}
	}
	if back.isDeleted(RID{Page: 1, Slot: 1}, 100) {
		t.Errorf("phantom delete")
	}
	// Missing file loads empty.
	empty, err := LoadDeleteVector(filepath.Join(t.TempDir(), "none.del"))
	if err != nil || empty.Len() != 0 {
		t.Errorf("missing file should load empty: %v %d", err, empty.Len())
	}
}
