// Package storage implements the paged storage substrate: a disk manager,
// an LRU buffer pool with pin counts and I/O statistics, and heap files of
// fixed-width records grouped into buckets of consecutive pages.
//
// The paper's performance argument is about pages touched, so the buffer
// pool counts every physical read and write; benchmarks report these counts
// alongside wall-clock time. An optional simulated per-page read latency
// reproduces the paper's cold-buffer behaviour deterministically.
package storage

import (
	"fmt"
	"os"
	"sync"
	"time"
)

// PageSize is the size of a disk page in bytes. The paper assumes 4K pages
// ("Assume that a bucket corresponds to a 4K-page...").
const PageSize = 4096

// PageID identifies a page within a single file (zero-based).
type PageID int64

// DiskManager performs page-granular I/O against a single file.
// It is safe for concurrent use.
type DiskManager struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	numPages int64

	// readLatency, if non-zero, is added to every physical page read to
	// simulate a cold rotating disk. Writes are not delayed: the paper's
	// experiments are read-only queries.
	readLatency time.Duration
	// seekLatency, if non-zero, is added when a read is not sequential
	// (page != previously read page + 1), modeling the random-I/O penalty
	// that makes non-clustered index scans and scattered ambivalent-bucket
	// fetches expensive (the effect behind the paper's Fig. 5 breakeven).
	seekLatency time.Duration
	lastRead    PageID

	reads     int64
	seqReads  int64
	randReads int64
	writes    int64
	syncs     int64

	// fault, when non-nil, is consulted before every physical operation
	// and can fail it. Crash tests use it to cut the disk out from under
	// the engine at a precise point.
	fault FaultFn
}

// FaultFn inspects an imminent disk operation ("read", "write", "sync",
// "truncate", with the page id where meaningful, -1 otherwise) and may
// veto it by returning an error.
type FaultFn func(op string, page PageID) error

// OpenDiskManager opens (creating if necessary) the page file at path.
func OpenDiskManager(path string) (*DiskManager, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat %s: %w", path, err)
	}
	if st.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: %s has size %d, not a multiple of the page size", path, st.Size())
	}
	return &DiskManager{f: f, path: path, numPages: st.Size() / PageSize, lastRead: -1}, nil
}

// SetReadLatency installs a simulated per-page read delay (0 disables).
func (d *DiskManager) SetReadLatency(lat time.Duration) {
	d.mu.Lock()
	d.readLatency = lat
	d.mu.Unlock()
}

// SetSeekLatency installs an additional delay for non-sequential reads
// (0 disables).
func (d *DiskManager) SetSeekLatency(lat time.Duration) {
	d.mu.Lock()
	d.seekLatency = lat
	d.mu.Unlock()
}

// SetFault installs (or with nil removes) a fault-injection hook.
func (d *DiskManager) SetFault(fn FaultFn) {
	d.mu.Lock()
	d.fault = fn
	d.mu.Unlock()
}

// checkFault runs the installed hook, if any, for an imminent operation.
func (d *DiskManager) checkFault(op string, page PageID) error {
	d.mu.Lock()
	fn := d.fault
	d.mu.Unlock()
	if fn == nil {
		return nil
	}
	return fn(op, page)
}

// Path returns the underlying file path.
func (d *DiskManager) Path() string { return d.path }

// NumPages returns the current number of pages in the file.
func (d *DiskManager) NumPages() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.numPages
}

// ReadPage reads page id into buf (which must be PageSize bytes).
func (d *DiskManager) ReadPage(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("storage: ReadPage buffer has %d bytes, want %d", len(buf), PageSize)
	}
	d.mu.Lock()
	if int64(id) < 0 || int64(id) >= d.numPages {
		n := d.numPages
		d.mu.Unlock()
		return fmt.Errorf("storage: read page %d out of range [0,%d)", id, n)
	}
	lat := d.readLatency
	if id == d.lastRead+1 {
		d.seqReads++
	} else {
		d.randReads++
		lat += d.seekLatency
	}
	d.lastRead = id
	d.reads++
	fault := d.fault
	d.mu.Unlock()

	if fault != nil {
		if err := fault("read", id); err != nil {
			return err
		}
	}
	if _, err := d.f.ReadAt(buf, int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: read page %d of %s: %w", id, d.path, err)
	}
	simulateLatency(lat)
	return nil
}

// SimulateLatency exposes the latency spinner for callers that model reads
// outside the page files (e.g. charging the sequential SMA-file load of a
// cold run).
func SimulateLatency(lat time.Duration) { simulateLatency(lat) }

// simulateLatency delays for lat. time.Sleep has ~1ms kernel granularity,
// which would distort microsecond-scale page costs by over an order of
// magnitude, so short delays spin on the monotonic clock instead.
func simulateLatency(lat time.Duration) {
	if lat <= 0 {
		return
	}
	if lat >= time.Millisecond {
		time.Sleep(lat)
		return
	}
	for start := time.Now(); time.Since(start) < lat; {
	}
}

// SeqRandReads returns the sequential / random split of physical reads.
func (d *DiskManager) SeqRandReads() (seq, random int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.seqReads, d.randReads
}

// WritePage writes buf (PageSize bytes) to page id, which must be within the
// file or exactly one past the end (append). The page checksum is stamped
// into buf's header before the write, so every page image that reaches
// disk is verifiable; callers must not rely on the checksum bytes.
func (d *DiskManager) WritePage(id PageID, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("storage: WritePage buffer has %d bytes, want %d", len(buf), PageSize)
	}
	if err := d.checkFault("write", id); err != nil {
		return err
	}
	StampPage(buf)
	d.mu.Lock()
	if int64(id) < 0 || int64(id) > d.numPages {
		n := d.numPages
		d.mu.Unlock()
		return fmt.Errorf("storage: write page %d out of range [0,%d]", id, n)
	}
	if int64(id) == d.numPages {
		d.numPages++
	}
	d.writes++
	d.mu.Unlock()

	if _, err := d.f.WriteAt(buf, int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: write page %d of %s: %w", id, d.path, err)
	}
	return nil
}

// AllocatePage appends a zeroed page and returns its id.
func (d *DiskManager) AllocatePage() (PageID, error) {
	d.mu.Lock()
	id := PageID(d.numPages)
	d.mu.Unlock()
	var zero [PageSize]byte
	if err := d.WritePage(id, zero[:]); err != nil {
		return 0, err
	}
	return id, nil
}

// Stats returns the number of physical page reads and writes so far.
func (d *DiskManager) Stats() (reads, writes int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reads, d.writes
}

// ResetStats zeroes the I/O counters and the sequential-read tracking.
func (d *DiskManager) ResetStats() {
	d.mu.Lock()
	d.reads, d.writes, d.seqReads, d.randReads = 0, 0, 0, 0
	d.lastRead = -1
	d.mu.Unlock()
}

// Sync flushes the file to stable storage.
func (d *DiskManager) Sync() error {
	if err := d.checkFault("sync", -1); err != nil {
		return err
	}
	if err := d.f.Sync(); err != nil {
		return err
	}
	d.mu.Lock()
	d.syncs++
	d.mu.Unlock()
	return nil
}

// Syncs returns the number of successful fsyncs issued so far.
func (d *DiskManager) Syncs() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.syncs
}

// Truncate shrinks the file to the given page count. Recovery uses it
// to drop pages allocated by statements that never committed.
func (d *DiskManager) Truncate(pages int64) error {
	if err := d.checkFault("truncate", PageID(pages)); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if pages < 0 || pages > d.numPages {
		return fmt.Errorf("storage: truncate to %d pages out of range [0,%d]", pages, d.numPages)
	}
	if err := d.f.Truncate(pages * PageSize); err != nil {
		return fmt.Errorf("storage: truncate %s: %w", d.path, err)
	}
	d.numPages = pages
	if int64(d.lastRead) >= pages {
		d.lastRead = -1
	}
	return nil
}

// Close flushes and closes the underlying file.
func (d *DiskManager) Close() error {
	err := d.Sync()
	if cerr := d.f.Close(); err == nil {
		err = cerr
	}
	return err
}
