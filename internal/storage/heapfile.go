package storage

import (
	"encoding/binary"
	"fmt"

	"sma/internal/tuple"
)

// pageHeaderSize reserves bytes at the start of every heap page for the
// record count (bytes 0-1), the page checksum (bytes 4-7, see
// checksum.go) plus padding for future use.
const pageHeaderSize = 16

// RID identifies a record by page and slot within that page.
type RID struct {
	Page PageID
	Slot int
}

// String renders the RID for diagnostics.
func (r RID) String() string { return fmt.Sprintf("(%d,%d)", r.Page, r.Slot) }

// HeapFile stores fixed-width records of one schema in page order. New
// records are appended to the last page — the "implicit clustering by time
// of creation" the paper builds on. Pages are grouped into buckets of
// BucketPages consecutive pages; SMA entries correspond positionally to
// these buckets.
type HeapFile struct {
	pool    *BufferPool
	schema  *tuple.Schema
	deletes *DeleteVector // nil when no record was ever deleted

	// BucketPages is the number of consecutive pages per SMA bucket.
	// The paper: "Examples of buckets are single pages or consecutive
	// sequences of pages." Must be >= 1.
	BucketPages int

	perPage int // records per page
}

// NewHeapFile wraps an open page file as a heap of records with the given
// schema. bucketPages controls the SMA bucket granularity.
func NewHeapFile(pool *BufferPool, schema *tuple.Schema, bucketPages int) (*HeapFile, error) {
	if bucketPages < 1 {
		return nil, fmt.Errorf("storage: bucketPages must be >= 1, got %d", bucketPages)
	}
	per := (PageSize - pageHeaderSize) / schema.RecordSize()
	if per < 1 {
		return nil, fmt.Errorf("storage: record size %d does not fit in a page", schema.RecordSize())
	}
	return &HeapFile{pool: pool, schema: schema, BucketPages: bucketPages, perPage: per}, nil
}

// Schema returns the record schema.
func (h *HeapFile) Schema() *tuple.Schema { return h.schema }

// Pool returns the buffer pool backing the heap file.
func (h *HeapFile) Pool() *BufferPool { return h.pool }

// RecordsPerPage returns the number of record slots per page.
func (h *HeapFile) RecordsPerPage() int { return h.perPage }

// NumPages returns the number of pages in the file.
func (h *HeapFile) NumPages() int64 { return h.pool.Disk().NumPages() }

// NumBuckets returns the number of (possibly partial) buckets.
func (h *HeapFile) NumBuckets() int {
	np := h.NumPages()
	bp := int64(h.BucketPages)
	return int((np + bp - 1) / bp)
}

// BucketOf returns the bucket number containing page id.
func (h *HeapFile) BucketOf(id PageID) int { return int(int64(id) / int64(h.BucketPages)) }

// BucketRange returns the page range [first, last] of bucket b, clamped to
// the file size. last is inclusive.
func (h *HeapFile) BucketRange(b int) (first, last PageID) {
	first = PageID(int64(b) * int64(h.BucketPages))
	last = first + PageID(h.BucketPages) - 1
	if max := PageID(h.NumPages() - 1); last > max {
		last = max
	}
	return first, last
}

func pageCount(data []byte) int {
	return int(binary.LittleEndian.Uint16(data))
}

func setPageCount(data []byte, n int) {
	binary.LittleEndian.PutUint16(data, uint16(n))
}

// Append adds a record to the end of the file and returns its RID.
func (h *HeapFile) Append(t tuple.Tuple) (RID, error) {
	if t.Schema != h.schema {
		// Allow structurally identical schemas (e.g. reloaded catalogs).
		if t.Schema.RecordSize() != h.schema.RecordSize() {
			return RID{}, fmt.Errorf("storage: tuple schema mismatch")
		}
	}
	np := h.NumPages()
	var fr *Frame
	var err error
	if np > 0 {
		fr, err = h.pool.FetchPage(PageID(np - 1))
		if err != nil {
			return RID{}, err
		}
		if pageCount(fr.Data()) >= h.perPage {
			if err := h.pool.UnpinPage(fr.ID()); err != nil {
				return RID{}, err
			}
			fr = nil
		}
	}
	if fr == nil {
		fr, err = h.pool.NewPage()
		if err != nil {
			return RID{}, err
		}
	}
	data := fr.Data()
	slot := pageCount(data)
	off := pageHeaderSize + slot*h.schema.RecordSize()
	copy(data[off:off+h.schema.RecordSize()], t.Data)
	setPageCount(data, slot+1)
	fr.MarkDirty()
	rid := RID{Page: fr.ID(), Slot: slot}
	if err := h.pool.UnpinPage(fr.ID()); err != nil {
		return RID{}, err
	}
	return rid, nil
}

// Get reads the record at rid into a freshly allocated tuple.
func (h *HeapFile) Get(rid RID) (tuple.Tuple, error) {
	fr, err := h.pool.FetchPage(rid.Page)
	if err != nil {
		return tuple.Tuple{}, err
	}
	defer h.pool.UnpinPage(rid.Page)
	n := pageCount(fr.Data())
	if rid.Slot < 0 || rid.Slot >= n {
		return tuple.Tuple{}, fmt.Errorf("storage: slot %d out of range [0,%d) on page %d", rid.Slot, n, rid.Page)
	}
	if !h.isLive(rid) {
		return tuple.Tuple{}, fmt.Errorf("storage: record %v is deleted", rid)
	}
	off := pageHeaderSize + rid.Slot*h.schema.RecordSize()
	t := tuple.NewTuple(h.schema)
	copy(t.Data, fr.Data()[off:off+h.schema.RecordSize()])
	return t, nil
}

// Update overwrites the record at rid with t. This is the ≤1-extra-page-
// access update path the paper highlights; SMA maintenance hooks observe the
// old and new images via the returned values of the caller.
func (h *HeapFile) Update(rid RID, t tuple.Tuple) error {
	fr, err := h.pool.FetchPage(rid.Page)
	if err != nil {
		return err
	}
	defer h.pool.UnpinPage(rid.Page)
	n := pageCount(fr.Data())
	if rid.Slot < 0 || rid.Slot >= n {
		return fmt.Errorf("storage: slot %d out of range [0,%d) on page %d", rid.Slot, n, rid.Page)
	}
	off := pageHeaderSize + rid.Slot*h.schema.RecordSize()
	copy(fr.Data()[off:off+h.schema.RecordSize()], t.Data)
	fr.MarkDirty()
	return nil
}

// NumRecords counts the live records. Records are fixed-width and Append
// fills the last page before allocating a new one, so every page but the
// last is exactly full: the count costs at most one page read (the last
// page), which keeps callers like a server's /status cheap no matter how
// large the relation is. Deletes only mark the delete vector and never
// shrink a page's slot count, so subtracting the vector length is exact.
func (h *HeapFile) NumRecords() (int64, error) {
	np := h.NumPages()
	var total int64
	if np > 0 {
		last := PageID(np - 1)
		fr, err := h.pool.FetchPage(last)
		if err != nil {
			return 0, err
		}
		total = (np-1)*int64(h.perPage) + int64(pageCount(fr.Data()))
		if err := h.pool.UnpinPage(last); err != nil {
			return 0, err
		}
	}
	if h.deletes != nil {
		total -= int64(h.deletes.Len())
	}
	return total, nil
}

// PageRecords pins page p and returns its record count. The caller provides
// visit, which receives each record as a Tuple aliasing frame memory; the
// tuple must not be retained after visit returns.
func (h *HeapFile) PageRecords(p PageID, visit func(t tuple.Tuple, rid RID) error) error {
	fr, err := h.pool.FetchPage(p)
	if err != nil {
		return err
	}
	defer h.pool.UnpinPage(p)
	n := pageCount(fr.Data())
	rs := h.schema.RecordSize()
	for s := 0; s < n; s++ {
		rid := RID{Page: p, Slot: s}
		if !h.isLive(rid) {
			continue
		}
		off := pageHeaderSize + s*rs
		t := tuple.Tuple{Schema: h.schema, Data: fr.Data()[off : off+rs]}
		if err := visit(t, rid); err != nil {
			return err
		}
	}
	return nil
}

// ReadPageInto appends the live records of page p to dst and returns the
// extended slice plus the number of records appended. The page is pinned
// only for the duration of the copy; when the heap has no deleted records
// the copy is a single memcpy of the page's record area. This is the
// page-decode step of the batched scan operators.
func (h *HeapFile) ReadPageInto(p PageID, dst []byte) ([]byte, int, error) {
	fr, err := h.pool.FetchPage(p)
	if err != nil {
		return dst, 0, err
	}
	defer h.pool.UnpinPage(p)
	data := fr.Data()
	n := pageCount(data)
	rs := h.schema.RecordSize()
	if h.deletes == nil || h.deletes.Len() == 0 {
		dst = append(dst, data[pageHeaderSize:pageHeaderSize+n*rs]...)
		return dst, n, nil
	}
	live := 0
	for s := 0; s < n; s++ {
		if !h.isLive(RID{Page: p, Slot: s}) {
			continue
		}
		off := pageHeaderSize + s*rs
		dst = append(dst, data[off:off+rs]...)
		live++
	}
	return dst, live, nil
}

// ScanBucket visits every record in bucket b in physical order.
func (h *HeapFile) ScanBucket(b int, visit func(t tuple.Tuple, rid RID) error) error {
	first, last := h.BucketRange(b)
	for p := first; p <= last; p++ {
		if err := h.PageRecords(p, visit); err != nil {
			return err
		}
	}
	return nil
}

// PageCursor iterates the records of one pinned page without copying.
// Tuples returned by Next alias frame memory and remain valid until Close.
type PageCursor struct {
	h    *HeapFile
	page PageID
	data []byte
	n    int
	pos  int
	open bool
}

// OpenPage pins page p and returns a cursor over its records. The caller
// must Close the cursor to unpin the page.
func (h *HeapFile) OpenPage(p PageID) (*PageCursor, error) {
	fr, err := h.pool.FetchPage(p)
	if err != nil {
		return nil, err
	}
	return &PageCursor{h: h, page: p, data: fr.Data(), n: pageCount(fr.Data()), open: true}, nil
}

// Next returns the next live record on the page, aliasing page memory.
func (c *PageCursor) Next() (tuple.Tuple, bool) {
	for c.pos < c.n {
		rid := RID{Page: c.page, Slot: c.pos}
		if !c.h.isLive(rid) {
			c.pos++
			continue
		}
		rs := c.h.schema.RecordSize()
		off := pageHeaderSize + c.pos*rs
		c.pos++
		return tuple.Tuple{Schema: c.h.schema, Data: c.data[off : off+rs]}, true
	}
	return tuple.Tuple{}, false
}

// Slot returns the slot index of the record most recently returned by Next.
func (c *PageCursor) Slot() int { return c.pos - 1 }

// Close unpins the page. It is idempotent.
func (c *PageCursor) Close() error {
	if !c.open {
		return nil
	}
	c.open = false
	return c.h.pool.UnpinPage(c.page)
}

// TailState captures the append position of the heap — the page count
// and the record count of the last page — so a statement can be rolled
// back to exactly where it started.
type TailState struct {
	Pages     int64
	LastCount int
}

// Tail snapshots the current append position.
func (h *HeapFile) Tail() (TailState, error) {
	np := h.NumPages()
	ts := TailState{Pages: np}
	if np > 0 {
		fr, err := h.pool.FetchPage(PageID(np - 1))
		if err != nil {
			return TailState{}, err
		}
		ts.LastCount = pageCount(fr.Data())
		if err := h.pool.UnpinPage(fr.ID()); err != nil {
			return TailState{}, err
		}
	}
	return ts, nil
}

// RestoreTail rolls the append position back to ts: pages allocated
// since the snapshot are discarded from the pool and truncated from the
// file, and the last surviving page's record count (and the bytes of
// the revoked slots) is reset. Only valid while the statement's dirty
// pages are still pooled — the statement barrier guarantees that.
func (h *HeapFile) RestoreTail(ts TailState) error {
	np := h.NumPages()
	for p := ts.Pages; p < np; p++ {
		if err := h.pool.Discard(PageID(p)); err != nil {
			return err
		}
	}
	if np > ts.Pages {
		if err := h.pool.Disk().Truncate(ts.Pages); err != nil {
			return err
		}
	}
	if ts.Pages == 0 {
		return nil
	}
	fr, err := h.pool.FetchPage(PageID(ts.Pages - 1))
	if err != nil {
		return err
	}
	data := fr.Data()
	if n := pageCount(data); n > ts.LastCount {
		rs := h.schema.RecordSize()
		from := pageHeaderSize + ts.LastCount*rs
		to := pageHeaderSize + n*rs
		for i := from; i < to && i < len(data); i++ {
			data[i] = 0
		}
		setPageCount(data, ts.LastCount)
		fr.MarkDirty()
	}
	return h.pool.UnpinPage(fr.ID())
}

// ApplyAt places a record image at an exact position, allocating pages
// as needed — the idempotent redo used by WAL replay for inserts and
// updates. Replaying an op that already reached disk leaves the page
// unchanged.
func (h *HeapFile) ApplyAt(rid RID, data []byte) error {
	rs := h.schema.RecordSize()
	if len(data) != rs {
		return fmt.Errorf("storage: ApplyAt image has %d bytes, want %d", len(data), rs)
	}
	if rid.Slot < 0 || rid.Slot >= h.perPage {
		return fmt.Errorf("storage: ApplyAt slot %d out of range [0,%d)", rid.Slot, h.perPage)
	}
	for h.NumPages() <= int64(rid.Page) {
		fr, err := h.pool.NewPage()
		if err != nil {
			return err
		}
		fr.MarkDirty()
		if err := h.pool.UnpinPage(fr.ID()); err != nil {
			return err
		}
	}
	fr, err := h.pool.FetchPage(rid.Page)
	if err != nil {
		return err
	}
	pdata := fr.Data()
	off := pageHeaderSize + rid.Slot*rs
	copy(pdata[off:off+rs], data)
	if n := pageCount(pdata); rid.Slot+1 > n {
		setPageCount(pdata, rid.Slot+1)
	}
	fr.MarkDirty()
	return h.pool.UnpinPage(fr.ID())
}

// RestorePage overwrites page id with a full image, allocating pages as
// needed — the redo for WAL full-page-image records.
func (h *HeapFile) RestorePage(id PageID, img []byte) error {
	if len(img) != PageSize {
		return fmt.Errorf("storage: RestorePage image has %d bytes, want %d", len(img), PageSize)
	}
	for h.NumPages() <= int64(id) {
		fr, err := h.pool.NewPage()
		if err != nil {
			return err
		}
		fr.MarkDirty()
		if err := h.pool.UnpinPage(fr.ID()); err != nil {
			return err
		}
	}
	fr, err := h.pool.FetchPage(id)
	if err != nil {
		return err
	}
	copy(fr.Data(), img)
	fr.MarkDirty()
	return h.pool.UnpinPage(fr.ID())
}

// Truncate drops every page at or beyond pages, discarding pooled
// frames and shrinking the file. Recovery uses it to remove pages
// allocated by statements that never committed.
func (h *HeapFile) Truncate(pages int64) error {
	np := h.NumPages()
	for p := pages; p < np; p++ {
		if err := h.pool.Discard(PageID(p)); err != nil {
			return err
		}
	}
	if np > pages {
		return h.pool.Disk().Truncate(pages)
	}
	return nil
}

// Scan visits every record in the file in physical order.
func (h *HeapFile) Scan(visit func(t tuple.Tuple, rid RID) error) error {
	np := h.NumPages()
	for p := PageID(0); int64(p) < np; p++ {
		if err := h.PageRecords(p, visit); err != nil {
			return err
		}
	}
	return nil
}

// SizeBytes returns the file size in bytes.
func (h *HeapFile) SizeBytes() int64 { return h.NumPages() * PageSize }
