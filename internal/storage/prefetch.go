package storage

import (
	"sort"
	"sync"
	"sync/atomic"
)

// PageSpan is an inclusive page interval [First, Last] of a prefetch plan.
// Scans describe their page set as spans — one per surviving bucket, or a
// single span for a contiguous range — so starting a prefetcher costs
// O(buckets), never O(pages).
type PageSpan struct{ First, Last PageID }

// Prefetcher streams a known page sequence into the buffer pool ahead of a
// scan cursor. The SMA machinery makes this unusually effective: the
// grading pass computes the exact surviving page set before the first page
// is touched, so readahead never wastes I/O on pages the query will skip.
//
// The window is positional: the prefetcher processes sequence index i only
// while i < consumed + window, where consumed is the progress the scan
// reports with Advance. Metering by position (not by pages processed)
// means a prefetcher that momentarily falls behind the cursor — its
// fetches then land on already-resident pages — sweeps past them cheaply
// and rebuilds its full lookahead, instead of collapsing to lockstep with
// the scan. The window simultaneously bounds the in-flight reads and
// prevents the prefetcher from evicting its own earlier pages on pools
// smaller than the page sequence. Prefetch and demand fetch coalesce
// through the pool's per-frame loading channel: a demand FetchPage that
// arrives while the prefetch read is in flight waits on the channel
// instead of issuing a second physical read.
//
// Prefetch reads pin their frame only for the duration of the read and
// unpin it immediately after, so a prefetched-but-never-pinned page is an
// ordinary eviction candidate. Close stops the readers and waits for
// in-flight reads to land; after Close returns the prefetcher holds no
// pins and no loading channel, so the pool can be dropped or the disk
// closed.
type Prefetcher struct {
	bp     *BufferPool
	spans  []PageSpan
	cum    []int64 // cumulative page counts per span
	total  int64
	window int64

	mu       sync.Mutex
	cond     *sync.Cond
	next     int64 // next sequence index to hand to a reader
	consumed int64 // pages the consumer reported via Advance
	closed   bool
	started  map[PageID]struct{} // pages a reader reached before the scan

	issued atomic.Int64 // physical reads this prefetcher triggered
	wg     sync.WaitGroup
}

// prefetchReaders caps the concurrent prefetch reads; beyond a handful the
// simulated (and real) disks serialize anyway.
const prefetchReaders = 8

// StartPrefetch launches background readers over the page sequence the
// spans describe (in order), keeping at most window pages ahead of the
// consumption the caller reports via Advance. The window is clamped to
// half the pool capacity so prefetch can never starve demand fetches of
// frames; a clamped-to-zero window (or an empty sequence) returns nil,
// which every Prefetcher method accepts.
func (bp *BufferPool) StartPrefetch(spans []PageSpan, window int) *Prefetcher {
	if max := bp.cap / 2; window > max {
		window = max
	}
	var total int64
	kept := make([]PageSpan, 0, len(spans))
	cum := make([]int64, 0, len(spans))
	for _, s := range spans {
		if s.Last < s.First {
			continue
		}
		total += int64(s.Last-s.First) + 1
		kept = append(kept, s)
		cum = append(cum, total)
	}
	if window <= 0 || total == 0 {
		return nil
	}
	p := &Prefetcher{
		bp:      bp,
		spans:   kept,
		cum:     cum,
		total:   total,
		window:  int64(window),
		started: make(map[PageID]struct{}, window),
	}
	p.cond = sync.NewCond(&p.mu)
	readers := prefetchReaders
	if readers > window {
		readers = window
	}
	p.wg.Add(readers)
	for i := 0; i < readers; i++ {
		go p.reader()
	}
	return p
}

// pageAt maps a sequence index to its page id via the cumulative counts.
func (p *Prefetcher) pageAt(i int64) PageID {
	s := sort.Search(len(p.cum), func(k int) bool { return p.cum[k] > i })
	prev := int64(0)
	if s > 0 {
		prev = p.cum[s-1]
	}
	return p.spans[s].First + PageID(i-prev)
}

// claimIndex hands the next sequence index to a reader, waiting while the
// window is exhausted. ok is false when the sequence is done or the
// prefetcher closed.
func (p *Prefetcher) claimIndex() (int64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for !p.closed && p.next < p.total && p.next >= p.consumed+p.window {
		p.cond.Wait()
	}
	if p.closed || p.next >= p.total {
		return 0, false
	}
	i := p.next
	p.next++
	return i, true
}

// reader pulls in-window pages into the pool. The page is marked before
// the read starts: a scan that arrives mid-read coalesces on the frame's
// loading channel, and the prefetcher still counts as having got there
// first. Read errors are swallowed — the demand fetch will retry the read
// and surface the error on the query path — but the mark is rolled back so
// a failed prefetch is never reported as a hit.
func (p *Prefetcher) reader() {
	defer p.wg.Done()
	for {
		i, ok := p.claimIndex()
		if !ok {
			return
		}
		id := p.pageAt(i)
		p.mu.Lock()
		p.started[id] = struct{}{}
		p.mu.Unlock()
		_, missed, err := p.bp.fetch(id, true)
		if err != nil {
			p.mu.Lock()
			delete(p.started, id)
			p.mu.Unlock()
			continue
		}
		if missed {
			p.issued.Add(1)
		}
		if err := p.bp.UnpinPage(id); err != nil {
			// A failed unpin means the frame is gone or the pin count is
			// off — an invariant breach, not an I/O error. Roll back the
			// mark so the consumer does a (correct) demand fetch instead
			// of claiming a page whose pin state is unknown.
			p.mu.Lock()
			delete(p.started, id)
			p.mu.Unlock()
		}
	}
}

// Advance reports that the consumer finished one page, sliding the
// readahead window forward. Safe on a nil prefetcher.
func (p *Prefetcher) Advance() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.consumed++
	occ := p.next - p.consumed
	p.mu.Unlock()
	p.cond.Broadcast()
	// Sample window occupancy — pages claimed ahead of consumption — once
	// per consumed page. Nil histogram (observability off) is inert.
	if occ >= 0 {
		p.bp.prefetchOcc.Observe(float64(occ))
	}
}

// Claim reports whether the prefetcher reached id before the consumer
// asked for it — the page is resident or its read is in flight, so the
// consumer either hits directly or coalesces on the loading channel
// instead of paying a synchronous read (a prefetch hit from the scan's
// point of view) — and forgets the page. Safe on a nil prefetcher.
func (p *Prefetcher) Claim(id PageID) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	_, ok := p.started[id]
	if ok {
		delete(p.started, id)
	}
	p.mu.Unlock()
	return ok
}

// Issued returns the number of physical reads the prefetcher triggered so
// far. Safe on a nil prefetcher.
func (p *Prefetcher) Issued() int {
	if p == nil {
		return 0
	}
	return int(p.issued.Load())
}

// Close stops the readers and blocks until every in-flight read has landed
// and released its pin. It is idempotent and safe on a nil prefetcher.
func (p *Prefetcher) Close() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}
