package storage

import (
	"testing"
	"time"
)

// prefetchDisk allocates n pages with a recognizable first byte each.
func prefetchDisk(t *testing.T, n int) *DiskManager {
	t.Helper()
	dm := newDisk(t)
	var page [PageSize]byte
	for i := 0; i < n; i++ {
		page[0] = byte(i)
		if err := dm.WritePage(PageID(i), page[:]); err != nil {
			t.Fatal(err)
		}
	}
	return dm
}

// waitIssued polls until the prefetcher has read ahead at least n pages.
func waitIssued(t *testing.T, p *Prefetcher, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for p.Issued() < n {
		if time.Now().After(deadline) {
			t.Fatalf("prefetcher stuck at %d/%d pages", p.Issued(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPrefetchWindowAndHits drives a prefetcher like a scan would: the
// prefetcher stays within its window, the consumer's fetches land on
// prefetched frames, and the pool attributes hits to readahead.
func TestPrefetchWindowAndHits(t *testing.T) {
	const numPages, window = 32, 4
	dm := prefetchDisk(t, numPages)
	bp := NewBufferPool(dm, 64)

	// Two spans covering all pages, exercising the span→page mapping.
	spans := []PageSpan{{First: 0, Last: numPages/2 - 1}, {First: numPages / 2, Last: numPages - 1}}
	p := bp.StartPrefetch(spans, window)
	if p == nil {
		t.Fatal("StartPrefetch returned nil for a valid window")
	}
	defer p.Close()

	// Without consumption the prefetcher must stall at the window.
	waitIssued(t, p, window)
	time.Sleep(10 * time.Millisecond)
	if got := p.Issued(); got > window {
		t.Fatalf("prefetcher ran %d pages ahead, window is %d", got, window)
	}

	hits := 0
	for i := 0; i < numPages; i++ {
		id := PageID(i)
		if p.Claim(id) {
			hits++
		}
		fr, err := bp.FetchPage(id)
		if err != nil {
			t.Fatalf("fetch %d: %v", id, err)
		}
		if fr.Data()[0] != byte(i) {
			t.Fatalf("page %d has wrong contents", i)
		}
		if err := bp.UnpinPage(id); err != nil {
			t.Fatal(err)
		}
		p.Advance()
	}
	if hits == 0 {
		t.Fatal("no scan fetch landed on a prefetched page")
	}
	p.Close()

	st := bp.Stats()
	if st.Prefetched == 0 {
		t.Fatal("pool counted no prefetched reads")
	}
	if st.PrefetchHits == 0 {
		t.Fatal("pool counted no prefetch hits")
	}
	// Prefetch and demand must have coalesced: every page exactly one
	// physical read.
	reads, _ := dm.Stats()
	if reads != numPages {
		t.Fatalf("%d physical reads for %d pages; prefetch duplicated I/O", reads, numPages)
	}
}

// TestPrefetchedFrameEvictable verifies that a prefetched-but-never-pinned
// frame is an ordinary eviction candidate: on a two-frame pool, demand
// fetches of other pages must be able to evict it.
func TestPrefetchedFrameEvictable(t *testing.T) {
	dm := prefetchDisk(t, 4)
	bp := NewBufferPool(dm, 2)

	p := bp.StartPrefetch([]PageSpan{{First: 0, Last: 0}}, 1)
	if p == nil {
		t.Fatal("window clamped to zero on a 2-frame pool")
	}
	waitIssued(t, p, 1)
	p.Close()

	if bp.Resident() != 1 {
		t.Fatalf("resident = %d after prefetch", bp.Resident())
	}
	// Two demand fetches fill the pool; the second must evict the
	// prefetched page 0 rather than fail.
	for _, id := range []PageID{1, 2} {
		fr, err := bp.FetchPage(id)
		if err != nil {
			t.Fatalf("fetch %d with prefetched frame resident: %v", id, err)
		}
		if fr.Data()[0] != byte(id) {
			t.Fatalf("page %d has wrong contents", id)
		}
		if err := bp.UnpinPage(id); err != nil {
			t.Fatal(err)
		}
	}
	if bp.Stats().Evictions == 0 {
		t.Fatal("prefetched frame was never evicted")
	}
}

// TestPrefetcherCloseReleasesPool is the shutdown regression test: closing
// a prefetcher mid-stream on a tiny pool must leave no pinned frame and no
// leaked loading channel, so DropAll and further fetches succeed.
func TestPrefetcherCloseReleasesPool(t *testing.T) {
	const numPages = 64
	dm := prefetchDisk(t, numPages)
	dm.SetReadLatency(200 * time.Microsecond) // keep reads in flight at Close
	bp := NewBufferPool(dm, 4)

	p := bp.StartPrefetch([]PageSpan{{First: 0, Last: numPages - 1}}, 2)
	waitIssued(t, p, 1)
	p.Close() // must wait for in-flight reads and drop their pins

	if err := bp.DropAll(); err != nil {
		t.Fatalf("DropAll after prefetcher Close: %v", err)
	}
	dm.SetReadLatency(0)
	// A frame abandoned with a stuck loading channel would hang this fetch.
	done := make(chan error, 1)
	go func() {
		fr, err := bp.FetchPage(3)
		if err == nil {
			err = bp.UnpinPage(fr.ID())
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("fetch after shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fetch after shutdown hung on a leaked loading channel")
	}
}

// TestPrefetchWindowClamp checks the safety clamps: tiny pools disable or
// shrink readahead instead of starving demand fetches.
func TestPrefetchWindowClamp(t *testing.T) {
	dm := prefetchDisk(t, 8)
	if p := NewBufferPool(dm, 1).StartPrefetch([]PageSpan{{First: 0, Last: 1}}, 16); p != nil {
		t.Fatal("1-frame pool should refuse to prefetch")
	}
	if p := NewBufferPool(dm, 64).StartPrefetch(nil, 16); p != nil {
		t.Fatal("empty span list should return a nil prefetcher")
	}
	if p := NewBufferPool(dm, 64).StartPrefetch([]PageSpan{{First: 3, Last: 2}}, 16); p != nil {
		t.Fatal("empty span should return a nil prefetcher")
	}
	// Nil prefetchers must be safe to drive.
	var p *Prefetcher
	p.Advance()
	p.Close()
	if p.Claim(0) || p.Issued() != 0 {
		t.Fatal("nil prefetcher misbehaves")
	}
}
