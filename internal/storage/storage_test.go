package storage

import (
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"sma/internal/tuple"
)

func newDisk(t testing.TB) *DiskManager {
	t.Helper()
	dm, err := OpenDiskManager(filepath.Join(t.TempDir(), "t.pages"))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { dm.Close() })
	return dm
}

func TestDiskManagerReadWrite(t *testing.T) {
	dm := newDisk(t)
	var page [PageSize]byte
	page[0], page[PageSize-1] = 0xAB, 0xCD
	if err := dm.WritePage(0, page[:]); err != nil {
		t.Fatal(err)
	}
	if dm.NumPages() != 1 {
		t.Fatalf("NumPages = %d", dm.NumPages())
	}
	var got [PageSize]byte
	if err := dm.ReadPage(0, got[:]); err != nil {
		t.Fatal(err)
	}
	if got != page {
		t.Errorf("read back differs")
	}
}

func TestDiskManagerBounds(t *testing.T) {
	dm := newDisk(t)
	var page [PageSize]byte
	if err := dm.ReadPage(0, page[:]); err == nil {
		t.Errorf("read past EOF should fail")
	}
	if err := dm.WritePage(5, page[:]); err == nil {
		t.Errorf("write beyond append position should fail")
	}
	if err := dm.ReadPage(0, make([]byte, 10)); err == nil {
		t.Errorf("short buffer should fail")
	}
}

func TestDiskManagerStats(t *testing.T) {
	dm := newDisk(t)
	var page [PageSize]byte
	for i := 0; i < 3; i++ {
		if _, err := dm.AllocatePage(); err != nil {
			t.Fatal(err)
		}
	}
	dm.ResetStats()
	// Sequential: 0,1,2. Then random: 0.
	for _, id := range []PageID{0, 1, 2, 0} {
		if err := dm.ReadPage(id, page[:]); err != nil {
			t.Fatal(err)
		}
	}
	reads, _ := dm.Stats()
	if reads != 4 {
		t.Errorf("reads = %d, want 4", reads)
	}
	seq, rnd := dm.SeqRandReads()
	// First read of page 0 is "sequential" (lastRead initialized to -1).
	if seq != 3 || rnd != 1 {
		t.Errorf("seq/rand = %d/%d, want 3/1", seq, rnd)
	}
}

func TestBufferPoolHitMissEvict(t *testing.T) {
	dm := newDisk(t)
	for i := 0; i < 4; i++ {
		if _, err := dm.AllocatePage(); err != nil {
			t.Fatal(err)
		}
	}
	bp := NewBufferPool(dm, 2)
	dm.ResetStats()

	// Miss, miss, hit.
	for _, id := range []PageID{0, 1, 0} {
		fr, err := bp.FetchPage(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := bp.UnpinPage(fr.ID()); err != nil {
			t.Fatal(err)
		}
	}
	st := bp.Stats()
	if st.Misses != 2 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 2 misses 1 hit", st)
	}

	// Page 2 evicts the LRU (page 1; 0 was used more recently).
	fr, err := bp.FetchPage(2)
	if err != nil {
		t.Fatal(err)
	}
	bp.UnpinPage(fr.ID())
	if fr, err = bp.FetchPage(0); err != nil {
		t.Fatal(err) // still resident
	}
	bp.UnpinPage(fr.ID())
	if got := bp.Stats(); got.Hits != 2 {
		t.Errorf("page 0 should still be resident: %+v", got)
	}
}

func TestBufferPoolPinnedNotEvicted(t *testing.T) {
	dm := newDisk(t)
	for i := 0; i < 3; i++ {
		dm.AllocatePage()
	}
	bp := NewBufferPool(dm, 1)
	fr, err := bp.FetchPage(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bp.FetchPage(1); err == nil {
		t.Errorf("fetch with all frames pinned should fail")
	}
	bp.UnpinPage(fr.ID())
	if _, err := bp.FetchPage(1); err != nil {
		t.Errorf("fetch after unpin: %v", err)
	}
}

func TestBufferPoolDirtyWriteback(t *testing.T) {
	dm := newDisk(t)
	bp := NewBufferPool(dm, 1)
	fr, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	fr.Data()[0] = 0x99
	fr.MarkDirty()
	id := fr.ID()
	bp.UnpinPage(id)
	// Force eviction by reading another page.
	if _, err := bp.NewPage(); err != nil {
		t.Fatal(err)
	}
	var page [PageSize]byte
	if err := dm.ReadPage(id, page[:]); err != nil {
		t.Fatal(err)
	}
	if page[0] != 0x99 {
		t.Errorf("dirty page was not written back")
	}
}

func TestBufferPoolDropAll(t *testing.T) {
	dm := newDisk(t)
	bp := NewBufferPool(dm, 4)
	fr, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	fr.Data()[77] = 0x42
	fr.MarkDirty()
	if err := bp.DropAll(); err == nil {
		t.Errorf("DropAll with pinned page should fail")
	}
	bp.UnpinPage(fr.ID())
	if err := bp.DropAll(); err != nil {
		t.Fatal(err)
	}
	if bp.Resident() != 0 {
		t.Errorf("pool not empty after DropAll")
	}
	var page [PageSize]byte
	if err := dm.ReadPage(0, page[:]); err != nil {
		t.Fatal(err)
	}
	if page[77] != 0x42 {
		t.Errorf("DropAll lost a dirty page")
	}
}

func TestBufferPoolUnpinErrors(t *testing.T) {
	dm := newDisk(t)
	bp := NewBufferPool(dm, 2)
	if err := bp.UnpinPage(0); err == nil {
		t.Errorf("unpin of non-resident page should fail")
	}
	fr, _ := bp.NewPage()
	bp.UnpinPage(fr.ID())
	if err := bp.UnpinPage(fr.ID()); err == nil {
		t.Errorf("double unpin should fail")
	}
}

func twoColSchema(t testing.TB) *tuple.Schema {
	t.Helper()
	return tuple.MustSchema([]tuple.Column{
		{Name: "K", Type: tuple.TInt64},
		{Name: "V", Type: tuple.TFloat64},
	})
}

func newHeap(t testing.TB, bucketPages, poolPages int) *HeapFile {
	t.Helper()
	dm := newDisk(t)
	h, err := NewHeapFile(NewBufferPool(dm, poolPages), twoColSchema(t), bucketPages)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHeapAppendGetScan(t *testing.T) {
	h := newHeap(t, 1, 64)
	const n = 1000
	tp := tuple.NewTuple(h.Schema())
	rids := make([]RID, n)
	for i := 0; i < n; i++ {
		tp.SetInt64(0, int64(i))
		tp.SetFloat64(1, float64(i)*1.5)
		rid, err := h.Append(tp)
		if err != nil {
			t.Fatal(err)
		}
		rids[i] = rid
	}
	cnt, err := h.NumRecords()
	if err != nil {
		t.Fatal(err)
	}
	if cnt != n {
		t.Fatalf("NumRecords = %d, want %d", cnt, n)
	}
	// Point lookups.
	for _, i := range []int{0, 1, n / 2, n - 1} {
		got, err := h.Get(rids[i])
		if err != nil {
			t.Fatal(err)
		}
		if got.Int64(0) != int64(i) {
			t.Errorf("Get(%v) = %d, want %d", rids[i], got.Int64(0), i)
		}
	}
	// Scan preserves physical (= insertion) order.
	expect := int64(0)
	err = h.Scan(func(tp tuple.Tuple, _ RID) error {
		if tp.Int64(0) != expect {
			t.Fatalf("scan out of order: got %d want %d", tp.Int64(0), expect)
		}
		expect++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHeapUpdate(t *testing.T) {
	h := newHeap(t, 1, 8)
	tp := tuple.NewTuple(h.Schema())
	tp.SetInt64(0, 1)
	rid, err := h.Append(tp)
	if err != nil {
		t.Fatal(err)
	}
	tp.SetInt64(0, 99)
	if err := h.Update(rid, tp); err != nil {
		t.Fatal(err)
	}
	got, err := h.Get(rid)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64(0) != 99 {
		t.Errorf("update lost: %d", got.Int64(0))
	}
	if err := h.Update(RID{Page: 0, Slot: 500}, tp); err == nil {
		t.Errorf("update of bad slot should fail")
	}
}

func TestHeapBuckets(t *testing.T) {
	h := newHeap(t, 2, 64) // 2 pages per bucket
	per := h.RecordsPerPage()
	tp := tuple.NewTuple(h.Schema())
	// Fill 5 pages.
	for i := 0; i < per*5; i++ {
		tp.SetInt64(0, int64(i))
		if _, err := h.Append(tp); err != nil {
			t.Fatal(err)
		}
	}
	if h.NumPages() != 5 {
		t.Fatalf("NumPages = %d, want 5", h.NumPages())
	}
	if h.NumBuckets() != 3 {
		t.Fatalf("NumBuckets = %d, want 3 (partial last)", h.NumBuckets())
	}
	if h.BucketOf(0) != 0 || h.BucketOf(1) != 0 || h.BucketOf(2) != 1 || h.BucketOf(4) != 2 {
		t.Errorf("BucketOf wrong")
	}
	first, last := h.BucketRange(2)
	if first != 4 || last != 4 {
		t.Errorf("BucketRange(2) = [%d,%d], want [4,4] (clamped)", first, last)
	}
	// ScanBucket covers exactly the bucket's tuples.
	var seen int
	if err := h.ScanBucket(1, func(tp tuple.Tuple, rid RID) error {
		if h.BucketOf(rid.Page) != 1 {
			t.Fatalf("tuple from wrong bucket")
		}
		seen++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if seen != per*2 {
		t.Errorf("bucket 1 has %d tuples, want %d", seen, per*2)
	}
}

func TestPageCursor(t *testing.T) {
	h := newHeap(t, 1, 8)
	per := h.RecordsPerPage()
	tp := tuple.NewTuple(h.Schema())
	for i := 0; i < per; i++ {
		tp.SetInt64(0, int64(i))
		if _, err := h.Append(tp); err != nil {
			t.Fatal(err)
		}
	}
	cur, err := h.OpenPage(0)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		rec, ok := cur.Next()
		if !ok {
			break
		}
		if rec.Int64(0) != int64(n) {
			t.Fatalf("cursor out of order")
		}
		if cur.Slot() != n {
			t.Fatalf("Slot = %d, want %d", cur.Slot(), n)
		}
		n++
	}
	if n != per {
		t.Errorf("cursor returned %d records, want %d", n, per)
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cur.Close(); err != nil {
		t.Errorf("Close should be idempotent: %v", err)
	}
}

func TestHeapRecordTooLarge(t *testing.T) {
	huge := tuple.MustSchema([]tuple.Column{{Name: "C", Type: tuple.TChar, Len: PageSize}})
	dm := newDisk(t)
	if _, err := NewHeapFile(NewBufferPool(dm, 4), huge, 1); err == nil {
		t.Errorf("record larger than a page should be rejected")
	}
	if _, err := NewHeapFile(NewBufferPool(dm, 4), twoColSchema(t), 0); err == nil {
		t.Errorf("bucketPages 0 should be rejected")
	}
}

// TestQuickHeapRoundTrip property-tests that appended values come back in
// order through a scan, across page boundaries, with a pool smaller than
// the file.
func TestQuickHeapRoundTrip(t *testing.T) {
	f := func(vals []int64) bool {
		if len(vals) > 3000 {
			vals = vals[:3000]
		}
		h := newHeap(t, 1, 4)
		tp := tuple.NewTuple(h.Schema())
		for _, v := range vals {
			tp.SetInt64(0, v)
			if _, err := h.Append(tp); err != nil {
				return false
			}
		}
		i := 0
		err := h.Scan(func(tp tuple.Tuple, _ RID) error {
			if tp.Int64(0) != vals[i] {
				t.Fatalf("value %d mismatched", i)
			}
			i++
			return nil
		})
		return err == nil && i == len(vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestQuickBufferPoolConsistency: a random fetch/write/unpin/evict workload
// never loses or corrupts page contents (verified against a shadow copy).
func TestQuickBufferPoolConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dm := newDisk(t)
		const numPages = 24
		shadow := make([][PageSize]byte, numPages)
		for i := 0; i < numPages; i++ {
			if _, err := dm.AllocatePage(); err != nil {
				return false
			}
		}
		bp := NewBufferPool(dm, 4) // much smaller than the page count
		for op := 0; op < 500; op++ {
			id := PageID(rng.Intn(numPages))
			fr, err := bp.FetchPage(id)
			if err != nil {
				return false
			}
			if fr.Data()[0] != shadow[id][0] || fr.Data()[PageSize-1] != shadow[id][PageSize-1] {
				t.Logf("seed %d op %d: page %d corrupted", seed, op, id)
				return false
			}
			if rng.Intn(2) == 0 {
				b := byte(rng.Intn(256))
				fr.Data()[0], fr.Data()[PageSize-1] = b, b
				shadow[id][0], shadow[id][PageSize-1] = b, b
				fr.MarkDirty()
			}
			if err := bp.UnpinPage(id); err != nil {
				return false
			}
			if rng.Intn(20) == 0 {
				if err := bp.DropAll(); err != nil {
					return false
				}
			}
		}
		// Flush and verify everything against the disk.
		if err := bp.FlushAll(); err != nil {
			return false
		}
		var buf [PageSize]byte
		for i := 0; i < numPages; i++ {
			if err := dm.ReadPage(PageID(i), buf[:]); err != nil {
				return false
			}
			if buf[0] != shadow[i][0] || buf[PageSize-1] != shadow[i][PageSize-1] {
				t.Logf("seed %d: page %d lost data on disk", seed, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
