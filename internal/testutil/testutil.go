// Package testutil provides shared helpers for the test suites: temporary
// heap files, small canned relations (including the paper's Figure 1
// example), and tolerance comparison.
package testutil

import (
	"math"
	"path/filepath"
	"testing"

	"sma/internal/storage"
	"sma/internal/tuple"
)

// NewHeap creates a temporary heap file with the given schema and bucket
// size, cleaned up with the test.
func NewHeap(t testing.TB, schema *tuple.Schema, bucketPages, poolPages int) *storage.HeapFile {
	t.Helper()
	dir := t.TempDir()
	dm, err := storage.OpenDiskManager(filepath.Join(dir, "table.tbl"))
	if err != nil {
		t.Fatalf("open disk manager: %v", err)
	}
	t.Cleanup(func() { dm.Close() })
	pool := storage.NewBufferPool(dm, poolPages)
	h, err := storage.NewHeapFile(pool, schema, bucketPages)
	if err != nil {
		t.Fatalf("new heap file: %v", err)
	}
	return h
}

// Fig1Schema is the single-column schema of the paper's Figure 1 example.
func Fig1Schema() *tuple.Schema {
	return tuple.MustSchema([]tuple.Column{
		{Name: "L_SHIPDATE", Type: tuple.TDate},
	})
}

// Fig1Dates returns the nine shipdates of Figure 1, in physical order:
// bucket 1 = {97-03-11, 97-04-22, 97-02-02}, bucket 2 = {97-04-01,
// 97-05-07, 97-04-28}, bucket 3 = {97-05-02, 97-05-20, 97-06-03}.
func Fig1Dates() []string {
	return []string{
		"1997-03-11", "1997-04-22", "1997-02-02",
		"1997-04-01", "1997-05-07", "1997-04-28",
		"1997-05-02", "1997-05-20", "1997-06-03",
	}
}

// LoadFig1 builds the Figure 1 relation: three buckets of three tuples. The
// schema's record size does not give three tuples per 4K page, so the
// helper uses a padded schema sized to exactly three records per page.
func LoadFig1(t testing.TB) *storage.HeapFile {
	t.Helper()
	// Pad the record so exactly 3 fit into a page: (4096-16)/3 = 1360.
	schema := tuple.MustSchema([]tuple.Column{
		{Name: "L_SHIPDATE", Type: tuple.TDate},
		{Name: "PAD", Type: tuple.TChar, Len: 1356},
	})
	h := NewHeap(t, schema, 1, 64)
	tp := tuple.NewTuple(schema)
	for _, d := range Fig1Dates() {
		tp.SetInt32(0, tuple.MustParseDate(d))
		tp.SetChar(1, "")
		if _, err := h.Append(tp); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if got := h.NumBuckets(); got != 3 {
		t.Fatalf("figure 1 relation has %d buckets, want 3", got)
	}
	return h
}

// PaddedFloatSchema returns a schema with one float64 column "A" padded so
// that exactly perPage records fit in a page. Tests use it to get many
// buckets from few tuples.
func PaddedFloatSchema(t testing.TB, perPage int) *tuple.Schema {
	t.Helper()
	const usable = storage.PageSize - 16 // page header
	pad := usable/perPage - 8
	if pad <= 0 {
		t.Fatalf("perPage %d too large", perPage)
	}
	return tuple.MustSchema([]tuple.Column{
		{Name: "A", Type: tuple.TFloat64},
		{Name: "PAD", Type: tuple.TChar, Len: pad},
	})
}

// AppendFloats appends values into column A of a heap using a padded or
// plain single-float schema.
func AppendFloats(t testing.TB, h *storage.HeapFile, vals ...float64) {
	t.Helper()
	tp := tuple.NewTuple(h.Schema())
	for _, v := range vals {
		tp.SetFloat64(0, v)
		if _, err := h.Append(tp); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
}

// AlmostEqual compares floats with relative tolerance.
func AlmostEqual(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*math.Max(scale, 1)
}

// WantFloat fails the test if got differs from want beyond tolerance.
func WantFloat(t *testing.T, name string, got, want float64) {
	t.Helper()
	if !AlmostEqual(got, want) {
		t.Errorf("%s = %v, want %v", name, got, want)
	}
}
