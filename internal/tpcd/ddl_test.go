package tpcd

import (
	"testing"

	"sma/internal/parser"
	"sma/internal/tuple"
)

// TestDDLMatchesSchema guards the two representations of each schema
// against drift: the "create table" DDL strings must parse to exactly the
// columns of the programmatic schemas.
func TestDDLMatchesSchema(t *testing.T) {
	cases := []struct {
		ddl    string
		schema *tuple.Schema
	}{
		{LineItemDDL, LineItemSchema()},
		{OrdersDDL, OrdersSchema()},
	}
	for _, c := range cases {
		st, err := parser.ParseStatement(c.ddl)
		if err != nil {
			t.Fatalf("parse DDL: %v", err)
		}
		ct, ok := st.(*parser.CreateTableStmt)
		if !ok {
			t.Fatalf("DDL parsed as %T", st)
		}
		want := c.schema.Columns()
		if len(ct.Columns) != len(want) {
			t.Fatalf("%s: DDL has %d columns, schema %d", ct.Table, len(ct.Columns), len(want))
		}
		for i, col := range ct.Columns {
			if col.Name != want[i].Name || col.Type != want[i].Type || col.Width() != want[i].Width() {
				t.Errorf("%s column %d: DDL %+v != schema %+v", ct.Table, i, col, want[i])
			}
		}
	}
}

// TestValuesMatchFillTuple: loading a row through Values must produce the
// same record bytes as FillTuple.
func TestValuesMatchFillTuple(t *testing.T) {
	items := GenLineItems(Config{ScaleFactor: 0.0002, Seed: 5})
	li := &items[0]
	viaFill := tuple.NewTuple(LineItemSchema())
	li.FillTuple(viaFill)
	vals := li.Values()
	if len(vals) != LineItemSchema().NumColumns() {
		t.Fatalf("Values() has %d entries, schema %d columns", len(vals), LineItemSchema().NumColumns())
	}
}
