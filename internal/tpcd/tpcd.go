// Package tpcd generates TPC-D-style data for the LINEITEM and ORDERS
// relations: the column domains, pricing arithmetic and date ranges of the
// benchmark's dbgen, sized by scale factor. In addition to the spec's
// uniform date distribution the generator supports the physical orderings
// the paper discusses: sorted on shipdate ("the optimal case"), the
// *diagonal* time-of-creation clustering of Fig. 2, a uniform shuffle, and
// a controlled-ambivalence mode that makes an exact fraction of buckets
// ambivalent for shipdate range predicates (Fig. 5's x-axis).
package tpcd

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"sma/internal/storage"
	"sma/internal/tuple"
)

// Date domain constants from the TPC-D specification. The paper's data-cube
// arithmetic uses the same 7-year / 2556-day domain: "Every date attribute
// of LINEITEM ... has a range of seven years or 2556 days."
var (
	// StartDate is the first order date (1992-01-01).
	StartDate = tuple.MustParseDate("1992-01-01")
	// EndDate is the last possible date in the domain (1998-12-31).
	EndDate = tuple.MustParseDate("1998-12-31")
	// CurrentDate is the benchmark's fixed "today" (1995-06-17).
	CurrentDate = tuple.MustParseDate("1995-06-17")
	// LastOrderDate is the last order date; orders stop 151 days before the
	// end of the domain so derived dates stay inside it.
	LastOrderDate = EndDate - 151
)

// DateDomainDays is the size of the date domain the paper's cube-space
// model assumes.
const DateDomainDays = 2556

// LineItemSchema returns the 16-column LINEITEM schema.
func LineItemSchema() *tuple.Schema {
	return tuple.MustSchema([]tuple.Column{
		{Name: "L_ORDERKEY", Type: tuple.TInt64},
		{Name: "L_PARTKEY", Type: tuple.TInt32},
		{Name: "L_SUPPKEY", Type: tuple.TInt32},
		{Name: "L_LINENUMBER", Type: tuple.TInt32},
		{Name: "L_QUANTITY", Type: tuple.TFloat64},
		{Name: "L_EXTENDEDPRICE", Type: tuple.TFloat64},
		{Name: "L_DISCOUNT", Type: tuple.TFloat64},
		{Name: "L_TAX", Type: tuple.TFloat64},
		{Name: "L_RETURNFLAG", Type: tuple.TChar, Len: 1},
		{Name: "L_LINESTATUS", Type: tuple.TChar, Len: 1},
		{Name: "L_SHIPDATE", Type: tuple.TDate},
		{Name: "L_COMMITDATE", Type: tuple.TDate},
		{Name: "L_RECEIPTDATE", Type: tuple.TDate},
		{Name: "L_SHIPINSTRUCT", Type: tuple.TChar, Len: 25},
		{Name: "L_SHIPMODE", Type: tuple.TChar, Len: 10},
		{Name: "L_COMMENT", Type: tuple.TChar, Len: 27},
	})
}

// OrdersSchema returns the ORDERS schema (the columns the experiments use).
func OrdersSchema() *tuple.Schema {
	return tuple.MustSchema([]tuple.Column{
		{Name: "O_ORDERKEY", Type: tuple.TInt64},
		{Name: "O_CUSTKEY", Type: tuple.TInt32},
		{Name: "O_ORDERSTATUS", Type: tuple.TChar, Len: 1},
		{Name: "O_TOTALPRICE", Type: tuple.TFloat64},
		{Name: "O_ORDERDATE", Type: tuple.TDate},
		{Name: "O_SHIPPRIORITY", Type: tuple.TInt32},
	})
}

// Order is the physical tuple order of generated LINEITEM data.
type Order uint8

// Physical ordering modes.
const (
	// OrderSpec emits tuples in order-key order with uniform order dates,
	// the TPC-D dbgen behaviour (which the paper notes "is not very
	// realistic": it destroys clustering).
	OrderSpec Order = iota
	// OrderSorted sorts tuples by L_SHIPDATE, the paper's optimal case.
	OrderSorted
	// OrderDiagonal emits tuples in warehouse-insertion order where
	// shipdate = insertion time minus a normally distributed preparation
	// delay: Fig. 2's diagonal data distribution.
	OrderDiagonal
	// OrderShuffled randomly permutes the tuples (worst case).
	OrderShuffled
)

// String names the ordering.
func (o Order) String() string {
	switch o {
	case OrderSpec:
		return "spec"
	case OrderSorted:
		return "sorted"
	case OrderDiagonal:
		return "diagonal"
	case OrderShuffled:
		return "shuffled"
	default:
		return fmt.Sprintf("Order(%d)", uint8(o))
	}
}

// Config controls data generation.
type Config struct {
	// ScaleFactor sizes the database; SF 1 is the paper's 1 GB database
	// with ~6M LINEITEM rows. Fractional values scale linearly.
	ScaleFactor float64
	// Seed makes generation deterministic.
	Seed int64
	// Order is the physical tuple order.
	Order Order
	// DiagonalSigmaDays is the standard deviation of the preparation-time
	// noise in OrderDiagonal mode (default 15 days).
	DiagonalSigmaDays float64
	// AmbivalentFrac, when > 0, plants one domain-minimum and one
	// domain-maximum shipdate into that fraction of buckets (after
	// ordering), making exactly those buckets ambivalent for any shipdate
	// range predicate with a cutoff strictly inside the domain. This is
	// the Fig. 5 control knob. Requires bucketing info at load time, so it
	// is applied by LoadLineItem.
	AmbivalentFrac float64
}

// NumLineItems returns the LINEITEM cardinality for the scale factor
// (6,001,215 at SF 1, scaled linearly).
func (c Config) NumLineItems() int {
	n := int(math.Round(c.ScaleFactor * 6001215))
	if n < 1 {
		n = 1
	}
	return n
}

// NumOrders returns the ORDERS cardinality (1,500,000 at SF 1).
func (c Config) NumOrders() int {
	n := int(math.Round(c.ScaleFactor * 1500000))
	if n < 1 {
		n = 1
	}
	return n
}

// LineItem is one generated LINEITEM row in struct form.
type LineItem struct {
	OrderKey      int64
	PartKey       int32
	SuppKey       int32
	LineNumber    int32
	Quantity      float64
	ExtendedPrice float64
	Discount      float64
	Tax           float64
	ReturnFlag    byte
	LineStatus    byte
	ShipDate      int32
	CommitDate    int32
	ReceiptDate   int32
}

// retailPrice implements the TPC-D part pricing formula.
func retailPrice(partKey int32) float64 {
	pk := int64(partKey)
	return (90000 + float64((pk/10)%20001) + 100*float64(pk%1000)) / 100
}

// GenLineItems produces the LINEITEM rows in the configured physical order.
func GenLineItems(cfg Config) []LineItem {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.NumLineItems()
	items := make([]LineItem, 0, n)

	sigma := cfg.DiagonalSigmaDays
	if sigma <= 0 {
		sigma = 15
	}

	orderKey := int64(0)
	for len(items) < n {
		orderKey++
		// 1..7 lineitems per order, as in dbgen.
		lines := 1 + rng.Intn(7)
		var orderDate int32
		switch cfg.Order {
		case OrderDiagonal:
			// Orders arrive in orderdate order: spread order dates evenly
			// over the domain in generation order, so insertion order
			// approximates orderdate order (Fig. 2's diagonal).
			frac := float64(len(items)) / float64(n)
			orderDate = StartDate + int32(frac*float64(LastOrderDate-StartDate))
		default:
			orderDate = StartDate + int32(rng.Intn(int(LastOrderDate-StartDate)+1))
		}
		for l := 1; l <= lines && len(items) < n; l++ {
			partKey := int32(1 + rng.Intn(200000))
			qty := float64(1 + rng.Intn(50))
			li := LineItem{
				OrderKey:      orderKey,
				PartKey:       partKey,
				SuppKey:       int32(1 + rng.Intn(10000)),
				LineNumber:    int32(l),
				Quantity:      qty,
				ExtendedPrice: qty * retailPrice(partKey),
				Discount:      float64(rng.Intn(11)) / 100,
				Tax:           float64(rng.Intn(9)) / 100,
			}
			switch cfg.Order {
			case OrderDiagonal:
				// Preparation time is normally distributed around a mean
				// delay; shipdate clusters diagonally with insertion order.
				delay := 60 + rng.NormFloat64()*sigma
				if delay < 1 {
					delay = 1
				}
				li.ShipDate = orderDate + int32(delay)
			default:
				li.ShipDate = orderDate + int32(1+rng.Intn(121))
			}
			if li.ShipDate > EndDate-31 {
				li.ShipDate = EndDate - 31
			}
			li.CommitDate = orderDate + int32(30+rng.Intn(61))
			li.ReceiptDate = li.ShipDate + int32(1+rng.Intn(30))
			if li.ReceiptDate <= CurrentDate {
				if rng.Intn(2) == 0 {
					li.ReturnFlag = 'R'
				} else {
					li.ReturnFlag = 'A'
				}
			} else {
				li.ReturnFlag = 'N'
			}
			if li.ShipDate > CurrentDate {
				li.LineStatus = 'O'
			} else {
				li.LineStatus = 'F'
			}
			items = append(items, li)
		}
	}

	switch cfg.Order {
	case OrderSorted:
		sortByShipDate(items)
	case OrderShuffled:
		rng.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })
	}
	return items
}

// sortByShipDate sorts stably by shipdate (counting sort over the day
// domain: the domain is small and this keeps generation O(n)).
func sortByShipDate(items []LineItem) {
	lo, hi := EndDate, StartDate
	for _, it := range items {
		if it.ShipDate < lo {
			lo = it.ShipDate
		}
		if it.ShipDate > hi {
			hi = it.ShipDate
		}
	}
	counts := make([]int, int(hi-lo)+2)
	for _, it := range items {
		counts[it.ShipDate-lo+1]++
	}
	for i := 1; i < len(counts); i++ {
		counts[i] += counts[i-1]
	}
	out := make([]LineItem, len(items))
	for _, it := range items {
		out[counts[it.ShipDate-lo]] = it
		counts[it.ShipDate-lo]++
	}
	copy(items, out)
}

// Filler values for the constant LINEITEM text columns.
const (
	fillShipInstruct = "DELIVER IN PERSON"
	fillShipMode     = "TRUCK"
	fillComment      = "generated by internal/tpcd"
)

// LineItemDDL is the LINEITEM schema in the engine's "create table"
// dialect; it must stay field-for-field in sync with LineItemSchema
// (guarded by a test).
const LineItemDDL = `create table LINEITEM (
	L_ORDERKEY int64, L_PARTKEY int32, L_SUPPKEY int32, L_LINENUMBER int32,
	L_QUANTITY float64, L_EXTENDEDPRICE float64, L_DISCOUNT float64, L_TAX float64,
	L_RETURNFLAG char(1), L_LINESTATUS char(1),
	L_SHIPDATE date, L_COMMITDATE date, L_RECEIPTDATE date,
	L_SHIPINSTRUCT char(25), L_SHIPMODE char(10), L_COMMENT char(27))`

// OrdersDDL is the ORDERS schema in the same dialect.
const OrdersDDL = `create table ORDERS (
	O_ORDERKEY int64, O_CUSTKEY int32, O_ORDERSTATUS char(1),
	O_TOTALPRICE float64, O_ORDERDATE date, O_SHIPPRIORITY int32)`

// FillTuple writes li into t, which must use LineItemSchema.
func (li *LineItem) FillTuple(t tuple.Tuple) {
	t.SetInt64(0, li.OrderKey)
	t.SetInt32(1, li.PartKey)
	t.SetInt32(2, li.SuppKey)
	t.SetInt32(3, li.LineNumber)
	t.SetFloat64(4, li.Quantity)
	t.SetFloat64(5, li.ExtendedPrice)
	t.SetFloat64(6, li.Discount)
	t.SetFloat64(7, li.Tax)
	t.SetChar(8, string(li.ReturnFlag))
	t.SetChar(9, string(li.LineStatus))
	t.SetInt32(10, li.ShipDate)
	t.SetInt32(11, li.CommitDate)
	t.SetInt32(12, li.ReceiptDate)
	t.SetChar(13, fillShipInstruct)
	t.SetChar(14, fillShipMode)
	t.SetChar(15, fillComment)
}

// dateTime converts a day count (days since 1970-01-01) to a time.Time,
// the date representation the public sma append API accepts.
func dateTime(days int32) time.Time {
	return time.Date(1970, 1, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, int(days))
}

// Values returns the row as one Go value per LineItemSchema column, in
// the form the public sma Table.Append accepts (dates as time.Time).
func (li *LineItem) Values() []any {
	return []any{li.OrderKey, li.PartKey, li.SuppKey, li.LineNumber,
		li.Quantity, li.ExtendedPrice, li.Discount, li.Tax,
		string(li.ReturnFlag), string(li.LineStatus),
		dateTime(li.ShipDate), dateTime(li.CommitDate), dateTime(li.ReceiptDate),
		fillShipInstruct, fillShipMode, fillComment}
}

// LoadLineItem generates LINEITEM data and appends it to the heap file,
// applying the controlled-ambivalence transformation if configured.
func LoadLineItem(h *storage.HeapFile, cfg Config) (int, error) {
	items := GenLineItems(cfg)
	if cfg.AmbivalentFrac > 0 {
		plantAmbivalence(items, cfg, h.RecordsPerPage()*h.BucketPages)
	}
	t := tuple.NewTuple(h.Schema())
	for i := range items {
		items[i].FillTuple(t)
		if _, err := h.Append(t); err != nil {
			return i, err
		}
	}
	return len(items), nil
}

// plantAmbivalence spreads extreme shipdates into a controlled fraction of
// buckets: a bucket containing both the domain minimum and maximum shipdate
// straddles every interior cutoff, so it is ambivalent for any predicate
// L_SHIPDATE <= c with StartDate <= c < EndDate.
func plantAmbivalence(items []LineItem, cfg Config, perBucket int) {
	if perBucket <= 0 {
		return
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 7919))
	numBuckets := (len(items) + perBucket - 1) / perBucket
	target := int(math.Round(cfg.AmbivalentFrac * float64(numBuckets)))
	if target > numBuckets {
		target = numBuckets
	}
	chosen := rng.Perm(numBuckets)[:target]
	for _, b := range chosen {
		first := b * perBucket
		last := first + perBucket - 1
		if last >= len(items) {
			last = len(items) - 1
		}
		if last <= first {
			continue
		}
		items[first].ShipDate = StartDate
		items[last].ShipDate = EndDate - 31
	}
}

// GenOrders produces ORDERS rows (orderkey-ordered).
func GenOrders(cfg Config) []OrderRow {
	rng := rand.New(rand.NewSource(cfg.Seed + 104729))
	n := cfg.NumOrders()
	out := make([]OrderRow, n)
	for i := range out {
		od := StartDate + int32(rng.Intn(int(LastOrderDate-StartDate)+1))
		status := byte('O')
		if od+121 < CurrentDate {
			status = 'F'
		} else if rng.Intn(4) == 0 {
			status = 'P'
		}
		out[i] = OrderRow{
			OrderKey:     int64(i + 1),
			CustKey:      int32(1 + rng.Intn(150000)),
			OrderStatus:  status,
			TotalPrice:   857.71 + rng.Float64()*500000,
			OrderDate:    od,
			ShipPriority: 0,
		}
	}
	return out
}

// OrderRow is one generated ORDERS row.
type OrderRow struct {
	OrderKey     int64
	CustKey      int32
	OrderStatus  byte
	TotalPrice   float64
	OrderDate    int32
	ShipPriority int32
}

// Values returns the row as one Go value per OrdersSchema column, in the
// form the public sma Table.Append accepts.
func (o *OrderRow) Values() []any {
	return []any{o.OrderKey, o.CustKey, string(o.OrderStatus),
		o.TotalPrice, dateTime(o.OrderDate), o.ShipPriority}
}

// FillTuple writes o into t, which must use OrdersSchema.
func (o *OrderRow) FillTuple(t tuple.Tuple) {
	t.SetInt64(0, o.OrderKey)
	t.SetInt32(1, o.CustKey)
	t.SetChar(2, string(o.OrderStatus))
	t.SetFloat64(3, o.TotalPrice)
	t.SetInt32(4, o.OrderDate)
	t.SetInt32(5, o.ShipPriority)
}

// LoadOrders generates ORDERS data and appends it to the heap file.
func LoadOrders(h *storage.HeapFile, cfg Config) (int, error) {
	rows := GenOrders(cfg)
	t := tuple.NewTuple(h.Schema())
	for i := range rows {
		rows[i].FillTuple(t)
		if _, err := h.Append(t); err != nil {
			return i, err
		}
	}
	return len(rows), nil
}
