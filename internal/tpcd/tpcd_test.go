package tpcd

import (
	"testing"
	"testing/quick"

	"sma/internal/tuple"
)

// TestDomains: every generated value stays inside the TPC-D domains the
// grading logic and the paper's cube arithmetic assume.
func TestDomains(t *testing.T) {
	items := GenLineItems(Config{ScaleFactor: 0.003, Seed: 1})
	if len(items) == 0 {
		t.Fatal("no items")
	}
	for i, li := range items {
		if li.Quantity < 1 || li.Quantity > 50 {
			t.Fatalf("item %d: quantity %g", i, li.Quantity)
		}
		if li.Discount < 0 || li.Discount > 0.10 {
			t.Fatalf("item %d: discount %g", i, li.Discount)
		}
		if li.Tax < 0 || li.Tax > 0.08 {
			t.Fatalf("item %d: tax %g", i, li.Tax)
		}
		if li.ShipDate < StartDate || li.ShipDate > EndDate {
			t.Fatalf("item %d: shipdate %s", i, tuple.FormatDate(li.ShipDate))
		}
		if li.ReceiptDate <= li.ShipDate {
			t.Fatalf("item %d: receipt %d <= ship %d", i, li.ReceiptDate, li.ShipDate)
		}
		if li.ExtendedPrice <= 0 {
			t.Fatalf("item %d: price %g", i, li.ExtendedPrice)
		}
		switch li.ReturnFlag {
		case 'R', 'A':
			if li.ReceiptDate > CurrentDate {
				t.Fatalf("item %d: flag %c with receipt after currentdate", i, li.ReturnFlag)
			}
		case 'N':
			if li.ReceiptDate <= CurrentDate {
				t.Fatalf("item %d: flag N with receipt before currentdate", i)
			}
		default:
			t.Fatalf("item %d: flag %c", i, li.ReturnFlag)
		}
		switch li.LineStatus {
		case 'O':
			if li.ShipDate <= CurrentDate {
				t.Fatalf("item %d: status O shipped before currentdate", i)
			}
		case 'F':
			if li.ShipDate > CurrentDate {
				t.Fatalf("item %d: status F shipped after currentdate", i)
			}
		default:
			t.Fatalf("item %d: status %c", i, li.LineStatus)
		}
	}
}

// TestDeterminism: same seed, same data.
func TestDeterminism(t *testing.T) {
	a := GenLineItems(Config{ScaleFactor: 0.001, Seed: 5, Order: OrderDiagonal})
	b := GenLineItems(Config{ScaleFactor: 0.001, Seed: 5, Order: OrderDiagonal})
	if len(a) != len(b) {
		t.Fatalf("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("item %d differs", i)
		}
	}
	c := GenLineItems(Config{ScaleFactor: 0.001, Seed: 6, Order: OrderDiagonal})
	same := len(a) == len(c)
	if same {
		same = false
		for i := range a {
			if a[i] != c[i] {
				break
			}
			if i == len(a)-1 {
				same = true
			}
		}
	}
	if same {
		t.Errorf("different seeds produced identical data")
	}
}

// TestSortedOrder: OrderSorted yields nondecreasing shipdates.
func TestSortedOrder(t *testing.T) {
	items := GenLineItems(Config{ScaleFactor: 0.002, Seed: 2, Order: OrderSorted})
	for i := 1; i < len(items); i++ {
		if items[i].ShipDate < items[i-1].ShipDate {
			t.Fatalf("item %d out of order", i)
		}
	}
}

// TestDiagonalClustering: diagonal order has far smaller windowed date
// spread than shuffled order (Fig. 2's point).
func TestDiagonalClustering(t *testing.T) {
	span := func(items []LineItem, window int) float64 {
		total, n := 0.0, 0
		for i := 0; i+window <= len(items); i += window {
			lo, hi := items[i].ShipDate, items[i].ShipDate
			for _, it := range items[i : i+window] {
				if it.ShipDate < lo {
					lo = it.ShipDate
				}
				if it.ShipDate > hi {
					hi = it.ShipDate
				}
			}
			total += float64(hi - lo)
			n++
		}
		return total / float64(n)
	}
	diag := GenLineItems(Config{ScaleFactor: 0.002, Seed: 3, Order: OrderDiagonal})
	shuf := GenLineItems(Config{ScaleFactor: 0.002, Seed: 3, Order: OrderShuffled})
	ds, ss := span(diag, 31), span(shuf, 31)
	if ds*5 > ss {
		t.Errorf("diagonal span %.1f should be far below shuffled %.1f", ds, ss)
	}
}

// TestScaling: cardinalities scale linearly with SF.
func TestScaling(t *testing.T) {
	small := Config{ScaleFactor: 0.001}.NumLineItems()
	big := Config{ScaleFactor: 0.002}.NumLineItems()
	if big < small*2-2 || big > small*2+2 {
		t.Errorf("cardinality not linear: %d vs %d", small, big)
	}
	if sf1 := (Config{ScaleFactor: 1}).NumLineItems(); sf1 != 6001215 {
		t.Errorf("SF1 cardinality = %d, want 6001215", sf1)
	}
	if o := (Config{ScaleFactor: 1}).NumOrders(); o != 1500000 {
		t.Errorf("SF1 orders = %d, want 1500000", o)
	}
}

// TestOrdersGeneration sanity-checks the ORDERS rows.
func TestOrdersGeneration(t *testing.T) {
	rows := GenOrders(Config{ScaleFactor: 0.001, Seed: 4})
	if len(rows) != 1500 {
		t.Fatalf("orders = %d", len(rows))
	}
	for i, o := range rows {
		if o.OrderKey != int64(i+1) {
			t.Fatalf("order %d: key %d", i, o.OrderKey)
		}
		if o.OrderDate < StartDate || o.OrderDate > LastOrderDate {
			t.Fatalf("order %d: date out of range", i)
		}
		if o.TotalPrice <= 0 {
			t.Fatalf("order %d: price %g", i, o.TotalPrice)
		}
	}
}

// TestFillTupleRoundTrip: struct -> tuple -> fields.
func TestFillTupleRoundTrip(t *testing.T) {
	items := GenLineItems(Config{ScaleFactor: 0.0005, Seed: 5})
	s := LineItemSchema()
	tp := tuple.NewTuple(s)
	for _, li := range items[:50] {
		li.FillTuple(tp)
		if tp.Int64(0) != li.OrderKey ||
			tp.Float64(4) != li.Quantity ||
			tp.CharByte(8) != li.ReturnFlag ||
			tp.Int32(10) != li.ShipDate {
			t.Fatalf("tuple round trip failed for %+v -> %s", li, tp)
		}
	}
	o := GenOrders(Config{ScaleFactor: 0.0005, Seed: 5})[0]
	ot := tuple.NewTuple(OrdersSchema())
	o.FillTuple(ot)
	if ot.Int64(0) != o.OrderKey || ot.Int32(4) != o.OrderDate {
		t.Fatalf("orders tuple round trip failed")
	}
}

// TestRetailPriceFormula spot-checks the TPC-D pricing arithmetic through
// generated rows: extendedprice = quantity * retailprice(partkey).
func TestRetailPriceFormula(t *testing.T) {
	items := GenLineItems(Config{ScaleFactor: 0.0005, Seed: 8})
	for _, li := range items[:100] {
		pk := int64(li.PartKey)
		want := li.Quantity * ((90000 + float64((pk/10)%20001) + 100*float64(pk%1000)) / 100)
		if li.ExtendedPrice != want {
			t.Fatalf("price %g != %g for partkey %d qty %g", li.ExtendedPrice, want, pk, li.Quantity)
		}
	}
}

// TestQuickLineNumbering: line numbers restart at 1 per order and are
// consecutive, for any seed.
func TestQuickLineNumbering(t *testing.T) {
	f := func(seed int64) bool {
		items := GenLineItems(Config{ScaleFactor: 0.0005, Seed: seed})
		var prevKey int64
		var prevLine int32
		for _, li := range items {
			if li.OrderKey != prevKey {
				if li.LineNumber != 1 {
					return false
				}
				prevKey, prevLine = li.OrderKey, 1
			} else {
				if li.LineNumber != prevLine+1 {
					return false
				}
				prevLine = li.LineNumber
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
