package tuple

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
)

// Column describes one column of a schema.
type Column struct {
	Name string
	Type Type
	// Len is the character count for TChar columns; ignored otherwise.
	Len int

	offset int // byte offset within a record, computed by NewSchema
}

// Width returns the on-disk width of the column in bytes.
func (c Column) Width() int {
	if c.Type == TChar {
		return c.Len
	}
	return c.Type.Width()
}

// Schema is an ordered list of columns with a fixed-width record layout.
// A Schema is immutable after construction.
type Schema struct {
	cols    []Column
	byName  map[string]int
	recSize int
}

// NewSchema builds a schema from the given columns, computing field offsets.
// Column names must be unique (case-insensitive) and non-empty.
func NewSchema(cols []Column) (*Schema, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("tuple: schema must have at least one column")
	}
	s := &Schema{
		cols:   make([]Column, len(cols)),
		byName: make(map[string]int, len(cols)),
	}
	off := 0
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("tuple: column %d has empty name", i)
		}
		key := strings.ToUpper(c.Name)
		if _, dup := s.byName[key]; dup {
			return nil, fmt.Errorf("tuple: duplicate column name %q", c.Name)
		}
		if c.Type == TChar && c.Len <= 0 {
			return nil, fmt.Errorf("tuple: char column %q needs positive Len", c.Name)
		}
		c.offset = off
		off += c.Width()
		s.cols[i] = c
		s.byName[key] = i
	}
	s.recSize = off
	return s, nil
}

// MustSchema is NewSchema that panics on error; for schema constants.
func MustSchema(cols []Column) *Schema {
	s, err := NewSchema(cols)
	if err != nil {
		panic(err)
	}
	return s
}

// RecordSize returns the fixed record width in bytes.
func (s *Schema) RecordSize() int { return s.recSize }

// NumColumns returns the number of columns.
func (s *Schema) NumColumns() int { return len(s.cols) }

// Column returns the i-th column.
func (s *Schema) Column(i int) Column { return s.cols[i] }

// Columns returns a copy of the column list.
func (s *Schema) Columns() []Column {
	out := make([]Column, len(s.cols))
	copy(out, s.cols)
	return out
}

// ColumnOffset returns the byte offset of the i-th column within a record,
// as computed by NewSchema. Batch operators use it to compare raw column
// bytes without re-deriving the record layout.
func (s *Schema) ColumnOffset(i int) int { return s.cols[i].offset }

// ColumnIndex resolves a column name (case-insensitive) to its index,
// returning -1 if absent.
func (s *Schema) ColumnIndex(name string) int {
	if i, ok := s.byName[strings.ToUpper(name)]; ok {
		return i
	}
	return -1
}

// HasColumn reports whether the schema contains the named column.
func (s *Schema) HasColumn(name string) bool { return s.ColumnIndex(name) >= 0 }

// Tuple is a fixed-width binary record interpreted through a Schema.
// The underlying bytes may alias page memory; callers that retain a Tuple
// across iterator advances must Copy it.
type Tuple struct {
	Schema *Schema
	Data   []byte
}

// NewTuple allocates a zeroed record for the schema.
func NewTuple(s *Schema) Tuple {
	return Tuple{Schema: s, Data: make([]byte, s.recSize)}
}

// Copy returns a Tuple backed by freshly allocated memory.
func (t Tuple) Copy() Tuple {
	d := make([]byte, len(t.Data))
	copy(d, t.Data)
	return Tuple{Schema: t.Schema, Data: d}
}

// Int32 reads an int32/date column by index.
func (t Tuple) Int32(i int) int32 {
	c := t.Schema.cols[i]
	return int32(binary.LittleEndian.Uint32(t.Data[c.offset:]))
}

// Int64 reads an int64 column by index.
func (t Tuple) Int64(i int) int64 {
	c := t.Schema.cols[i]
	return int64(binary.LittleEndian.Uint64(t.Data[c.offset:]))
}

// Float64 reads a float64 column by index.
func (t Tuple) Float64(i int) float64 {
	c := t.Schema.cols[i]
	return math.Float64frombits(binary.LittleEndian.Uint64(t.Data[c.offset:]))
}

// Char reads a TChar column by index, with trailing padding trimmed.
func (t Tuple) Char(i int) string {
	c := t.Schema.cols[i]
	return strings.TrimRight(string(t.Data[c.offset:c.offset+c.Len]), " ")
}

// CharBytes returns the bytes of a TChar column with trailing padding
// trimmed, aliasing the tuple's memory. It is the allocation-free
// counterpart of Char for hot loops; callers must not retain or mutate the
// slice.
func (t Tuple) CharBytes(i int) []byte {
	c := t.Schema.cols[i]
	b := t.Data[c.offset : c.offset+c.Len]
	for len(b) > 0 && b[len(b)-1] == ' ' {
		b = b[:len(b)-1]
	}
	return b
}

// CharByte returns the first byte of a TChar column; convenient for the
// one-character flag columns of LINEITEM.
func (t Tuple) CharByte(i int) byte {
	c := t.Schema.cols[i]
	return t.Data[c.offset]
}

// Numeric reads any numeric column (int32/int64/float64/date) as a float64.
// This is the value domain used by expressions and SMA aggregates.
func (t Tuple) Numeric(i int) float64 {
	switch t.Schema.cols[i].Type {
	case TInt32, TDate:
		return float64(t.Int32(i))
	case TInt64:
		return float64(t.Int64(i))
	case TFloat64:
		return t.Float64(i)
	default:
		panic(fmt.Sprintf("tuple: column %q is not numeric", t.Schema.cols[i].Name))
	}
}

// SetInt32 writes an int32/date column by index.
func (t Tuple) SetInt32(i int, v int32) {
	c := t.Schema.cols[i]
	binary.LittleEndian.PutUint32(t.Data[c.offset:], uint32(v))
}

// SetInt64 writes an int64 column by index.
func (t Tuple) SetInt64(i int, v int64) {
	c := t.Schema.cols[i]
	binary.LittleEndian.PutUint64(t.Data[c.offset:], uint64(v))
}

// SetFloat64 writes a float64 column by index.
func (t Tuple) SetFloat64(i int, v float64) {
	c := t.Schema.cols[i]
	binary.LittleEndian.PutUint64(t.Data[c.offset:], math.Float64bits(v))
}

// SetChar writes a TChar column by index, truncating or space-padding to the
// declared length.
func (t Tuple) SetChar(i int, v string) {
	c := t.Schema.cols[i]
	dst := t.Data[c.offset : c.offset+c.Len]
	n := copy(dst, v)
	for ; n < c.Len; n++ {
		dst[n] = ' '
	}
}

// SetNumeric writes a float64 into any numeric column, converting to the
// column's storage type.
func (t Tuple) SetNumeric(i int, v float64) {
	switch t.Schema.cols[i].Type {
	case TInt32, TDate:
		t.SetInt32(i, int32(v))
	case TInt64:
		t.SetInt64(i, int64(v))
	case TFloat64:
		t.SetFloat64(i, v)
	default:
		panic(fmt.Sprintf("tuple: column %q is not numeric", t.Schema.cols[i].Name))
	}
}

// String renders the tuple for debugging.
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range t.Schema.cols {
		if i > 0 {
			b.WriteString(", ")
		}
		switch c.Type {
		case TInt32:
			fmt.Fprintf(&b, "%d", t.Int32(i))
		case TInt64:
			fmt.Fprintf(&b, "%d", t.Int64(i))
		case TFloat64:
			fmt.Fprintf(&b, "%g", t.Float64(i))
		case TDate:
			b.WriteString(FormatDate(t.Int32(i)))
		case TChar:
			fmt.Fprintf(&b, "%q", t.Char(i))
		}
	}
	b.WriteByte(')')
	return b.String()
}
