package tuple

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema([]Column{
		{Name: "I32", Type: TInt32},
		{Name: "I64", Type: TInt64},
		{Name: "F64", Type: TFloat64},
		{Name: "D", Type: TDate},
		{Name: "C1", Type: TChar, Len: 1},
		{Name: "C10", Type: TChar, Len: 10},
	})
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

func TestSchemaLayout(t *testing.T) {
	s := testSchema(t)
	if got, want := s.RecordSize(), 4+8+8+4+1+10; got != want {
		t.Errorf("RecordSize = %d, want %d", got, want)
	}
	if s.NumColumns() != 6 {
		t.Errorf("NumColumns = %d, want 6", s.NumColumns())
	}
	if s.ColumnIndex("f64") != 2 {
		t.Errorf("ColumnIndex is not case-insensitive")
	}
	if s.ColumnIndex("NOPE") != -1 {
		t.Errorf("ColumnIndex of unknown column should be -1")
	}
	if !s.HasColumn("c10") || s.HasColumn("c99") {
		t.Errorf("HasColumn misbehaves")
	}
}

func TestSchemaErrors(t *testing.T) {
	cases := []struct {
		name string
		cols []Column
	}{
		{"empty", nil},
		{"dup", []Column{{Name: "A", Type: TInt32}, {Name: "a", Type: TInt32}}},
		{"noname", []Column{{Name: "", Type: TInt32}}},
		{"charlen", []Column{{Name: "C", Type: TChar}}},
	}
	for _, tc := range cases {
		if _, err := NewSchema(tc.cols); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestTupleRoundTrip(t *testing.T) {
	s := testSchema(t)
	tp := NewTuple(s)
	tp.SetInt32(0, -42)
	tp.SetInt64(1, 1<<40)
	tp.SetFloat64(2, 3.25)
	tp.SetInt32(3, MustParseDate("1997-04-30"))
	tp.SetChar(4, "R")
	tp.SetChar(5, "TRUCK")

	if tp.Int32(0) != -42 {
		t.Errorf("Int32 = %d", tp.Int32(0))
	}
	if tp.Int64(1) != 1<<40 {
		t.Errorf("Int64 = %d", tp.Int64(1))
	}
	if tp.Float64(2) != 3.25 {
		t.Errorf("Float64 = %v", tp.Float64(2))
	}
	if FormatDate(tp.Int32(3)) != "1997-04-30" {
		t.Errorf("date = %s", FormatDate(tp.Int32(3)))
	}
	if tp.Char(4) != "R" || tp.CharByte(4) != 'R' {
		t.Errorf("char1 = %q", tp.Char(4))
	}
	if tp.Char(5) != "TRUCK" {
		t.Errorf("char10 = %q (padding should be trimmed)", tp.Char(5))
	}
}

func TestTupleCharTruncation(t *testing.T) {
	s := testSchema(t)
	tp := NewTuple(s)
	tp.SetChar(5, "ABCDEFGHIJKLMNOP") // longer than 10
	if got := tp.Char(5); got != "ABCDEFGHIJ" {
		t.Errorf("Char = %q, want truncation to 10", got)
	}
}

func TestTupleNumeric(t *testing.T) {
	s := testSchema(t)
	tp := NewTuple(s)
	tp.SetInt32(0, 7)
	tp.SetInt64(1, 9)
	tp.SetFloat64(2, 1.5)
	tp.SetInt32(3, 100)
	for i, want := range []float64{7, 9, 1.5, 100} {
		if got := tp.Numeric(i); got != want {
			t.Errorf("Numeric(%d) = %v, want %v", i, got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Errorf("Numeric on char column should panic")
		}
	}()
	tp.Numeric(4)
}

func TestSetNumeric(t *testing.T) {
	s := testSchema(t)
	tp := NewTuple(s)
	tp.SetNumeric(0, 12)
	tp.SetNumeric(1, 13)
	tp.SetNumeric(2, 2.5)
	tp.SetNumeric(3, 14)
	if tp.Int32(0) != 12 || tp.Int64(1) != 13 || tp.Float64(2) != 2.5 || tp.Int32(3) != 14 {
		t.Errorf("SetNumeric round trip failed: %s", tp)
	}
}

func TestTupleCopyIsDeep(t *testing.T) {
	s := testSchema(t)
	tp := NewTuple(s)
	tp.SetInt32(0, 1)
	cp := tp.Copy()
	tp.SetInt32(0, 2)
	if cp.Int32(0) != 1 {
		t.Errorf("Copy aliases the original")
	}
}

func TestDateHelpers(t *testing.T) {
	if DateFromYMD(1970, 1, 1) != 0 {
		t.Errorf("epoch should be day 0")
	}
	d, err := ParseDate("1992-01-01")
	if err != nil {
		t.Fatal(err)
	}
	if FormatDate(d) != "1992-01-01" {
		t.Errorf("round trip = %s", FormatDate(d))
	}
	if _, err := ParseDate("not-a-date"); err == nil {
		t.Errorf("expected parse error")
	}
	// 1992-01-01 .. 1998-12-31 is 2557 days inclusive (two leap years); the
	// paper's cube model rounds this to 2556, which internal/tpcd keeps as
	// its model constant.
	span := MustParseDate("1998-12-31") - MustParseDate("1992-01-01") + 1
	if span != 2557 {
		t.Errorf("date domain = %d days, want 2557", span)
	}
}

func TestMustParseDatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("MustParseDate should panic on bad input")
		}
	}()
	MustParseDate("bogus")
}

// TestQuickDateRoundTrip property-tests FormatDate/ParseDate inversion.
func TestQuickDateRoundTrip(t *testing.T) {
	f := func(n uint16) bool {
		d := int32(n) // 0 .. 65535 days ≈ 1970..2149
		back, err := ParseDate(FormatDate(d))
		return err == nil && back == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickNumericRoundTrip property-tests float64 storage.
func TestQuickNumericRoundTrip(t *testing.T) {
	s := testSchema(t)
	f := func(v float64) bool {
		if math.IsNaN(v) {
			return true
		}
		tp := NewTuple(s)
		tp.SetFloat64(2, v)
		return tp.Float64(2) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickCharRoundTrip property-tests char padding/trimming for printable
// ASCII content.
func TestQuickCharRoundTrip(t *testing.T) {
	s := testSchema(t)
	f := func(raw []byte) bool {
		var sb strings.Builder
		for _, b := range raw {
			if b > ' ' && b < 127 {
				sb.WriteByte(b)
			}
		}
		v := sb.String()
		if len(v) > 10 {
			v = v[:10]
		}
		tp := NewTuple(s)
		tp.SetChar(5, v)
		return tp.Char(5) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTypeProperties(t *testing.T) {
	if TInt32.Width() != 4 || TDate.Width() != 4 || TInt64.Width() != 8 || TFloat64.Width() != 8 {
		t.Errorf("type widths wrong")
	}
	if TChar.Width() != 0 {
		t.Errorf("char width should be per-column")
	}
	for _, typ := range []Type{TInt32, TInt64, TFloat64, TDate} {
		if !typ.Numeric() {
			t.Errorf("%s should be numeric", typ)
		}
	}
	if TChar.Numeric() {
		t.Errorf("char should not be numeric")
	}
	if TInt32.String() != "INT32" || TChar.String() != "CHAR" {
		t.Errorf("type names wrong")
	}
}

func TestTupleString(t *testing.T) {
	s := testSchema(t)
	tp := NewTuple(s)
	tp.SetInt32(0, 5)
	tp.SetChar(4, "X")
	tp.SetInt32(3, MustParseDate("1995-06-17"))
	str := tp.String()
	for _, want := range []string{"5", `"X"`, "1995-06-17"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %s missing %s", str, want)
		}
	}
}
