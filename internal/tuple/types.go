// Package tuple defines typed schemas and the fixed-width binary record
// layout used by the storage engine. Records are fixed width so that the
// i-th entry of an SMA-file corresponds positionally to the i-th bucket of
// consecutive pages, exactly as the paper requires ("the order of the
// entries in the SMA will directly correspond to the physical order of the
// buckets on disc").
package tuple

import (
	"fmt"
	"time"
)

// Type enumerates the column types supported by the engine.
type Type uint8

const (
	// TInt32 is a 32-bit signed integer.
	TInt32 Type = iota
	// TInt64 is a 64-bit signed integer.
	TInt64
	// TFloat64 is an IEEE-754 double.
	TFloat64
	// TDate is a date stored as int32 days since 1970-01-01.
	TDate
	// TChar is a fixed-width character field, padded with spaces.
	TChar
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TInt32:
		return "INT32"
	case TInt64:
		return "INT64"
	case TFloat64:
		return "FLOAT64"
	case TDate:
		return "DATE"
	case TChar:
		return "CHAR"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Width returns the on-disk width in bytes for scalar types. For TChar the
// width is per-column (see Column.Len); Width returns 0 in that case.
func (t Type) Width() int {
	switch t {
	case TInt32, TDate:
		return 4
	case TInt64, TFloat64:
		return 8
	default:
		return 0
	}
}

// Numeric reports whether values of the type can be used in arithmetic
// expressions and min/max/sum aggregates.
func (t Type) Numeric() bool {
	switch t {
	case TInt32, TInt64, TFloat64, TDate:
		return true
	default:
		return false
	}
}

// epoch is the zero point of TDate values.
var epoch = time.Date(1970, 1, 1, 0, 0, 0, 0, time.UTC)

// DateFromYMD converts a calendar date to its TDate representation
// (days since 1970-01-01).
func DateFromYMD(year, month, day int) int32 {
	t := time.Date(year, time.Month(month), day, 0, 0, 0, 0, time.UTC)
	return int32(t.Sub(epoch).Hours() / 24)
}

// ParseDate parses a "YYYY-MM-DD" string into a TDate value.
func ParseDate(s string) (int32, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return 0, fmt.Errorf("tuple: parse date %q: %w", s, err)
	}
	return int32(t.Sub(epoch).Hours() / 24), nil
}

// MustParseDate is ParseDate that panics on malformed input. It is intended
// for constants in tests and generators.
func MustParseDate(s string) int32 {
	d, err := ParseDate(s)
	if err != nil {
		panic(err)
	}
	return d
}

// FormatDate renders a TDate value as "YYYY-MM-DD".
func FormatDate(d int32) string {
	return epoch.AddDate(0, 0, int(d)).Format("2006-01-02")
}
