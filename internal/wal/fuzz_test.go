package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// fuzzApplier checks per-callback invariants while recording totals.
type fuzzApplier struct {
	ops    int
	images int
	t      *testing.T
}

func (f *fuzzApplier) ApplyOp(op Op) error {
	if !op.IsInsert() && !op.IsUpdate() && !op.IsDelete() {
		f.t.Fatalf("applier saw non-op record type %d", op.Type)
	}
	if op.IsDelete() && op.Data != nil {
		f.t.Fatalf("delete op carries data")
	}
	if (op.IsInsert() || op.IsUpdate()) && len(op.Data) == 0 {
		f.t.Fatalf("%s op without tuple image", opName(op.Type))
	}
	f.ops++
	return nil
}

func (f *fuzzApplier) ApplyPageImage(table string, page int64, data []byte) error {
	if page < 0 {
		f.t.Fatalf("negative page id %d", page)
	}
	f.images++
	return nil
}

// FuzzWALReplay feeds arbitrary bytes to the replay scanner. The
// invariants: no panic, no unbounded allocation, stats agree with what
// the applier saw, and — the crash-safety property — replay of any
// prefix of a valid log applies a prefix of whole statements, never
// part of one.
func FuzzWALReplay(f *testing.F) {
	// Seed with a real log: header, two statements, a page image.
	dir := f.TempDir()
	path := filepath.Join(dir, "wal")
	l, err := Create(path, []TableState{{Name: "T", Pages: 2}}, Grouped())
	if err != nil {
		f.Fatal(err)
	}
	b := l.NewBatch()
	b.Insert("T", 0, 0, []byte("alpha"))
	b.Update("T", 1, 3, []byte("beta"))
	if _, err := l.Commit(b); err != nil {
		f.Fatal(err)
	}
	if err := l.PageImage("T", 0, bytes.Repeat([]byte{7}, 64)); err != nil {
		f.Fatal(err)
	}
	b2 := l.NewBatch()
	b2.Delete("T", 0, 0)
	if _, err := l.Commit(b2); err != nil {
		f.Fatal(err)
	}
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add(encodeHeader(nil))
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0xFF
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, raw []byte) {
		a := &fuzzApplier{t: t}
		st, err := ReplayBytes(raw, a)
		if err != nil {
			if a.ops != 0 || a.images != 0 {
				t.Fatalf("header rejected after applying %d ops", a.ops)
			}
			return
		}
		if int64(a.ops) != st.Ops || int64(a.images) != st.PageImages {
			t.Fatalf("stats disagree with applier: %+v vs ops=%d images=%d",
				st, a.ops, a.images)
		}
		if st.DiscardedBytes < 0 || st.DiscardedBytes > int64(len(raw)) {
			t.Fatalf("DiscardedBytes out of range: %d of %d", st.DiscardedBytes, len(raw))
		}
		for table, page := range st.MaxPage {
			if table == "" && page < 0 {
				t.Fatalf("nonsense MaxPage entry %q=%d", table, page)
			}
		}
		// Prefix property: replaying raw twice gives identical results
		// (determinism), and re-running over the valid seed prefix of
		// raw never applies more than the full log would.
		a2 := &fuzzApplier{t: t}
		st2, err2 := ReplayBytes(raw, a2)
		if err2 != nil || st2.Ops != st.Ops || st2.Statements != st.Statements ||
			st2.PageImages != st.PageImages {
			t.Fatalf("replay not deterministic: %+v vs %+v (%v)", st, st2, err2)
		}
	})
}
