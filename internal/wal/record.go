// Package wal implements the engine's write-ahead redo log: an
// append-only file of CRC-guarded records that makes DML statements
// atomic and the heap/SMA pair crash-recoverable.
//
// The log holds three kinds of information:
//
//   - logical redo records (insert/update/delete), slot-precise and
//     idempotent, grouped into statements that end with a commit record
//     carrying the statement's operation count;
//   - full-page images, appended before a dirty heap page is written
//     back in place, so a torn page write can always be repaired from
//     the log (the buffer pool never writes back pages dirtied by an
//     uncommitted statement, so page images only ever contain committed
//     data);
//   - a checkpoint header recording each table's page count at the
//     moment the log was last truncated, which recovery uses as the
//     committed base state.
//
// Replay applies the longest well-formed prefix of complete, committed
// statements and stops — never errors — at the first torn or corrupt
// record, so a crash mid-append (or a bit flip in the tail) costs at
// most the statements that had not finished committing. See Scanner for
// the exact fail-closed rules.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Record types. The zero value is deliberately invalid so a zeroed
// (preallocated-but-unwritten) tail region never parses as a record.
const (
	recInsert    = byte(1) // table, rid, tuple image
	recUpdate    = byte(2) // table, rid, new tuple image
	recDelete    = byte(3) // table, rid
	recCommit    = byte(4) // statement boundary: seq + op count
	recPageImage = byte(5) // table, page id, full 4 KB page image
)

// maxBody bounds a record body: a full page image plus its framing. A
// length field above this is treated as corruption, not an allocation
// request — a flipped bit in the length must not make the scanner try
// to read gigabytes.
const maxBody = 8 << 10

// headerMagic identifies a log file and its format version.
var headerMagic = [6]byte{'S', 'W', 'A', 'L', '1', '\n'}

// crcTable is the Castagnoli polynomial, hardware-accelerated on the
// platforms this engine targets.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// crcChecksum is the record checksum: CRC-32C over the body.
func crcChecksum(body []byte) uint32 { return crc32.Checksum(body, crcTable) }

// TableState is one table's committed extent at checkpoint time: its
// page count after every dirty page was flushed and fsynced. Recovery
// truncates each table back to max(checkpoint pages, highest replayed
// page + 1), discarding pages allocated by statements that never
// committed.
type TableState struct {
	Name  string
	Pages int64
}

// Op is one logical redo operation delivered to an Applier.
type Op struct {
	Type  byte // recInsert, recUpdate, or recDelete
	Table string
	Page  int64
	Slot  int
	Data  []byte // tuple image for insert/update; nil for delete
}

// IsInsert, IsUpdate, IsDelete name the op kind without exporting the
// record-type bytes.
func (o Op) IsInsert() bool { return o.Type == recInsert }
func (o Op) IsUpdate() bool { return o.Type == recUpdate }
func (o Op) IsDelete() bool { return o.Type == recDelete }

// appendRecord frames body into dst: crc32c(body), length, body.
func appendRecord(dst, body []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(body, crcTable))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(body)))
	return append(dst, body...)
}

// appendOp encodes a logical redo record body into dst and frames it.
func appendOp(dst []byte, typ byte, table string, page int64, slot int, data []byte) []byte {
	body := make([]byte, 0, 1+1+len(table)+8+2+len(data))
	body = append(body, typ, byte(len(table)))
	body = append(body, table...)
	body = binary.LittleEndian.AppendUint64(body, uint64(page))
	body = binary.LittleEndian.AppendUint16(body, uint16(slot))
	body = append(body, data...)
	return appendRecord(dst, body)
}

// appendCommit encodes a statement-boundary record.
func appendCommit(dst []byte, seq uint64, nOps int) []byte {
	var body [13]byte
	body[0] = recCommit
	binary.LittleEndian.PutUint64(body[1:], seq)
	binary.LittleEndian.PutUint32(body[9:], uint32(nOps))
	return appendRecord(dst, body[:])
}

// appendPageImage encodes a full-page image record.
func appendPageImage(dst []byte, table string, page int64, data []byte) []byte {
	body := make([]byte, 0, 1+1+len(table)+8+len(data))
	body = append(body, recPageImage, byte(len(table)))
	body = append(body, table...)
	body = binary.LittleEndian.AppendUint64(body, uint64(page))
	body = append(body, data...)
	return appendRecord(dst, body)
}

// encodeHeader renders the checkpoint header: magic, crc, length, then
// the table states. The crc covers the state payload so a half-written
// header (crash between truncate and write) reads as corrupt, not as an
// empty checkpoint over the wrong base.
func encodeHeader(states []TableState) []byte {
	var payload []byte
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(states)))
	for _, st := range states {
		payload = binary.LittleEndian.AppendUint16(payload, uint16(len(st.Name)))
		payload = append(payload, st.Name...)
		payload = binary.LittleEndian.AppendUint64(payload, uint64(st.Pages))
	}
	out := make([]byte, 0, len(headerMagic)+8+len(payload))
	out = append(out, headerMagic[:]...)
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, crcTable))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	return append(out, payload...)
}

// decodeHeader parses the checkpoint header, returning the table states
// and the offset of the first record. A corrupt header is a hard error:
// without the checkpoint base, replay has nothing sound to build on.
func decodeHeader(raw []byte) (states []TableState, off int64, err error) {
	if len(raw) < len(headerMagic)+8 {
		return nil, 0, fmt.Errorf("wal: short header (%d bytes)", len(raw))
	}
	if [6]byte(raw[:6]) != headerMagic {
		return nil, 0, fmt.Errorf("wal: bad magic %q", raw[:6])
	}
	crc := binary.LittleEndian.Uint32(raw[6:])
	plen := int(binary.LittleEndian.Uint32(raw[10:]))
	if plen > maxBody || len(raw) < 14+plen {
		return nil, 0, fmt.Errorf("wal: truncated header payload (%d bytes)", plen)
	}
	payload := raw[14 : 14+plen]
	if crc32.Checksum(payload, crcTable) != crc {
		return nil, 0, fmt.Errorf("wal: header checksum mismatch")
	}
	if len(payload) < 4 {
		return nil, 0, fmt.Errorf("wal: header payload too short for state count")
	}
	n := int(binary.LittleEndian.Uint32(payload))
	payload = payload[4:]
	for i := 0; i < n; i++ {
		if len(payload) < 2 {
			return nil, 0, fmt.Errorf("wal: truncated header state")
		}
		nameLen := int(binary.LittleEndian.Uint16(payload))
		if len(payload) < 2+nameLen+8 {
			return nil, 0, fmt.Errorf("wal: truncated header state")
		}
		states = append(states, TableState{
			Name:  string(payload[2 : 2+nameLen]),
			Pages: int64(binary.LittleEndian.Uint64(payload[2+nameLen:])),
		})
		payload = payload[2+nameLen+8:]
	}
	return states, int64(14 + plen), nil
}

// decodeOp parses an op record body (type already verified).
func decodeOp(body []byte) (Op, error) {
	if len(body) < 2 {
		return Op{}, fmt.Errorf("wal: short op record")
	}
	nameLen := int(body[1])
	if len(body) < 2+nameLen+10 {
		return Op{}, fmt.Errorf("wal: short op record")
	}
	op := Op{
		Type:  body[0],
		Table: string(body[2 : 2+nameLen]),
		Page:  int64(binary.LittleEndian.Uint64(body[2+nameLen:])),
		Slot:  int(binary.LittleEndian.Uint16(body[2+nameLen+8:])),
	}
	if data := body[2+nameLen+10:]; len(data) > 0 {
		op.Data = data
	}
	if op.Type == recDelete && op.Data != nil {
		return Op{}, fmt.Errorf("wal: delete record carries %d data bytes", len(op.Data))
	}
	if (op.Type == recInsert || op.Type == recUpdate) && op.Data == nil {
		return Op{}, fmt.Errorf("wal: %s record without tuple image", opName(op.Type))
	}
	return op, nil
}

// opName renders a record type for diagnostics.
func opName(t byte) string {
	switch t {
	case recInsert:
		return "insert"
	case recUpdate:
		return "update"
	case recDelete:
		return "delete"
	case recCommit:
		return "commit"
	case recPageImage:
		return "page-image"
	}
	return fmt.Sprintf("type-%d", t)
}
