package wal

import (
	"encoding/binary"
	"os"
)

// Applier receives the committed content of a log during recovery. All
// callbacks are idempotent targets: ops name exact (page, slot)
// positions and replay may run more than once if recovery itself is
// interrupted.
type Applier interface {
	// ApplyOp applies one logical redo operation. It is called only for
	// operations whose statement committed, in log order.
	ApplyOp(op Op) error
	// ApplyPageImage restores a full page image at its original
	// position, in log order relative to ops.
	ApplyPageImage(table string, page int64, data []byte) error
}

// ReplayStats describes what a replay recovered and what it refused.
type ReplayStats struct {
	// Statements is the number of committed statements applied.
	Statements int64
	// Ops is the number of redo operations applied.
	Ops int64
	// PageImages is the number of full-page images restored.
	PageImages int64
	// DiscardedBytes counts log bytes after the last complete committed
	// statement: a torn tail, a corrupt record, or operations whose
	// commit record never made it. They are never applied.
	DiscardedBytes int64
	// Header is the checkpoint base state the log was created over.
	Header []TableState
	// MaxPage maps each table touched by replay to the highest page id
	// written into it. Recovery truncates each table file to
	// max(checkpoint pages, MaxPage+1) to drop pages allocated by
	// uncommitted statements.
	MaxPage map[string]int64
}

// Replay reads the log at path and applies its committed prefix to a.
// A missing, torn, or corrupted tail is not an error — replay stops at
// the last statement boundary and reports the discarded bytes. Only a
// corrupt header (nothing sound to build on) or an applier failure
// aborts with an error.
func Replay(path string, a Applier) (*ReplayStats, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ReplayBytes(raw, a)
}

// ReplayBytes is Replay over an in-memory log image; the fuzz harness
// drives it directly.
func ReplayBytes(raw []byte, a Applier) (*ReplayStats, error) {
	states, off, err := decodeHeader(raw)
	if err != nil {
		return nil, err
	}
	st := &ReplayStats{Header: states, MaxPage: make(map[string]int64)}
	touch := func(table string, page int64) {
		if cur, ok := st.MaxPage[table]; !ok || page > cur {
			st.MaxPage[table] = page
		}
	}

	var pending []Op // current statement's ops, held until its commit
	pos := off       // read cursor
	boundary := off  // position just after the last complete statement
scan:
	for {
		body, size, ok := nextRecord(raw[pos:])
		if !ok {
			break // torn or corrupt tail: fail closed
		}
		switch body[0] {
		case recInsert, recUpdate, recDelete:
			op, err := decodeOp(body)
			if err != nil {
				break scan
			}
			pending = append(pending, op)
		case recCommit:
			if len(body) != 13 {
				break scan
			}
			nOps := int(binary.LittleEndian.Uint32(body[9:]))
			if nOps != len(pending) || nOps == 0 {
				// A commit that does not account for exactly the ops
				// queued since the last boundary means lost or foreign
				// records; applying any of them could half-apply a
				// statement. Stop here.
				break scan
			}
			for _, op := range pending {
				if err := a.ApplyOp(op); err != nil {
					return st, err
				}
				touch(op.Table, op.Page)
			}
			st.Statements++
			st.Ops += int64(len(pending))
			pending = pending[:0]
			boundary = pos + size
		case recPageImage:
			if len(pending) != 0 {
				// The writer only logs page images between statements
				// (the buffer pool never writes back statement-dirty
				// pages); one inside a statement is corruption.
				break scan
			}
			if len(body) < 2 {
				break scan
			}
			nameLen := int(body[1])
			if len(body) < 2+nameLen+8 {
				break scan
			}
			table := string(body[2 : 2+nameLen])
			page := int64(binary.LittleEndian.Uint64(body[2+nameLen:]))
			data := body[2+nameLen+8:]
			if err := a.ApplyPageImage(table, page, data); err != nil {
				return st, err
			}
			st.PageImages++
			touch(table, page)
			boundary = pos + size
		default:
			break scan
		}
		pos += size
	}
	st.DiscardedBytes = int64(len(raw)) - boundary
	return st, nil
}

// nextRecord parses one framed record from the front of raw. ok is
// false at EOF and at any framing or checksum violation; the caller
// treats both as the end of the trustworthy prefix.
func nextRecord(raw []byte) (body []byte, size int64, ok bool) {
	if len(raw) < 8 {
		return nil, 0, false
	}
	crc := binary.LittleEndian.Uint32(raw)
	blen := int(binary.LittleEndian.Uint32(raw[4:]))
	if blen == 0 || blen > maxBody || len(raw) < 8+blen {
		return nil, 0, false
	}
	body = raw[8 : 8+blen]
	if crcChecksum(body) != crc {
		return nil, 0, false
	}
	return body, int64(8 + blen), true
}
