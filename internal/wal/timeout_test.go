package wal

import (
	"errors"
	"testing"
	"time"
)

// TestFollowerWaitTimesOut proves a stalled group-commit leader cannot
// hang followers forever: with the sync token held (as a leader stuck
// in fsync would hold it), WaitDurable gives up with ErrSyncTimeout
// within the policy bound instead of blocking on the condvar.
func TestFollowerWaitTimesOut(t *testing.T) {
	path := logPath(t)
	policy := SyncPolicy{Mode: ModeGrouped, SyncTimeout: 50 * time.Millisecond}
	l := mustCreate(t, path, nil, policy)
	defer l.Close()

	b := l.NewBatch()
	b.Insert("T", 0, 0, []byte("tuple"))
	seq, err := l.Commit(b)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a leader stalled inside fsync: it holds the sync token
	// and never broadcasts.
	l.syncMu.Lock()
	l.syncing = true
	l.syncMu.Unlock()

	start := time.Now()
	err = l.WaitDurable(seq)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrSyncTimeout) {
		t.Fatalf("WaitDurable under stalled leader: got %v, want ErrSyncTimeout", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("follower took %s to give up, bound was 50ms", elapsed)
	}
	if st := l.Stats(); st.SyncTimeouts != 1 {
		t.Fatalf("SyncTimeouts = %d, want 1", st.SyncTimeouts)
	}

	// Once the stall clears, the same wait succeeds (the waiter becomes
	// leader and fsyncs) — the timeout is not sticky.
	l.syncMu.Lock()
	l.syncing = false
	l.syncCond.Broadcast()
	l.syncMu.Unlock()
	if err := l.WaitDurable(seq); err != nil {
		t.Fatalf("WaitDurable after stall cleared: %v", err)
	}
}
