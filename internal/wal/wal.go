package wal

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// ErrSyncTimeout is returned by WaitDurable when a group-commit wait
// exceeds the policy's SyncTimeout — typically because the leader's
// fsync has stalled in the kernel. The statement's durability is
// unknown: its records were handed to the OS but the barrier never
// completed.
var ErrSyncTimeout = errors.New("wal: group-commit wait timed out")

// defaultSyncTimeout bounds group-commit waits when the policy does not
// set one. A healthy fsync is microseconds to milliseconds; ten seconds
// distinguishes a stalled device from a merely busy one.
const defaultSyncTimeout = 10 * time.Second

// SyncMode selects when commit records are forced to stable storage.
type SyncMode int

const (
	// ModeGrouped fsyncs before every SQL statement returns, with one
	// fsync amortized over all concurrently-committing statements
	// (leader/follower group commit). Power-loss safe.
	ModeGrouped SyncMode = iota
	// ModeOS hands records to the operating system without fsync.
	// Survives a process crash, not a power cut.
	ModeOS
	// ModeInterval fsyncs from a background ticker every Interval.
	// Bounds power-loss exposure to one tick.
	ModeInterval
)

// SyncPolicy is the durability knob surfaced as sma.WithSyncPolicy.
type SyncPolicy struct {
	Mode     SyncMode
	Interval time.Duration
	// SyncTimeout bounds how long a group-commit follower waits for the
	// leader's fsync before giving up with ErrSyncTimeout. Zero selects
	// the default (10s).
	SyncTimeout time.Duration
}

// Grouped returns the default policy: group-committed fsync per
// statement.
func Grouped() SyncPolicy { return SyncPolicy{Mode: ModeGrouped} }

// OSOnly returns the write-to-OS policy: no fsync on commit.
func OSOnly() SyncPolicy { return SyncPolicy{Mode: ModeOS} }

// Every returns the background-fsync policy with the given interval.
func Every(d time.Duration) SyncPolicy {
	return SyncPolicy{Mode: ModeInterval, Interval: d}
}

func (p SyncPolicy) String() string {
	switch p.Mode {
	case ModeGrouped:
		return "grouped"
	case ModeOS:
		return "os"
	case ModeInterval:
		return fmt.Sprintf("every %s", p.Interval)
	}
	return fmt.Sprintf("mode-%d", int(p.Mode))
}

// Batch accumulates one statement's redo records. It is not safe for
// concurrent use; the engine builds each batch under its write lock.
type Batch struct {
	buf []byte
	n   int
}

// Insert records a tuple image placed at (page, slot).
func (b *Batch) Insert(table string, page int64, slot int, data []byte) {
	b.buf = appendOp(b.buf, recInsert, table, page, slot, data)
	b.n++
}

// Update records a replacement tuple image at (page, slot).
func (b *Batch) Update(table string, page int64, slot int, data []byte) {
	b.buf = appendOp(b.buf, recUpdate, table, page, slot, data)
	b.n++
}

// Delete records a tombstone for (page, slot).
func (b *Batch) Delete(table string, page int64, slot int) {
	b.buf = appendOp(b.buf, recDelete, table, page, slot, nil)
	b.n++
}

// Len reports the number of operations recorded so far.
func (b *Batch) Len() int { return b.n }

// Stats is a point-in-time snapshot of log activity.
type Stats struct {
	Commits      uint64 // statements committed (non-empty batches)
	Syncs        uint64 // fsync calls issued
	GroupedWaits uint64 // WaitDurable calls satisfied by another caller's fsync
	Records      uint64 // redo + commit + page-image records appended
	Bytes        uint64 // bytes appended since the log was created
	PageImages   uint64 // full-page images appended
	Checkpoints  uint64 // truncations since the log was created
	SyncTimeouts uint64 // group-commit waits abandoned at the deadline
	Size         int64  // current file size in bytes
	LastSeq      uint64 // last committed statement sequence
	SyncedSeq    uint64 // highest sequence known durable
	Policy       string
}

// Log is the append-only redo log. Appends are buffered and serialized
// by an internal mutex; durability waits run group commit on a second
// mutex so an in-flight fsync never blocks new appends.
type Log struct {
	policy SyncPolicy

	mu     sync.Mutex // guards f/w appends, seq, size, dirty, closed
	f      *os.File
	w      *bufio.Writer
	path   string
	seq    uint64
	size   int64
	dirty  bool // bytes appended since the last fsync
	closed bool

	syncMu    sync.Mutex // guards the fields below; never held with mu
	syncCond  *sync.Cond
	syncedSeq uint64
	syncing   bool
	syncErr   error // sticky: a failed fsync means durability is unknown

	stopTicker chan struct{}
	tickerDone chan struct{}
	closeOnce  sync.Once
	closeErr   error

	nCommits      atomic.Uint64
	nSyncs        atomic.Uint64
	nGroupedWaits atomic.Uint64
	nRecords      atomic.Uint64
	nBytes        atomic.Uint64
	nPageImages   atomic.Uint64
	nCheckpoints  atomic.Uint64
	nSyncTimeouts atomic.Uint64
}

// Create truncates (or creates) the log at path and writes a checkpoint
// header recording states as the committed base. The caller must have
// made the heap state described by states durable first: Create is the
// point where prior log contents stop being needed.
func Create(path string, states []TableState, policy SyncPolicy) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	l := &Log{
		policy: policy,
		f:      f,
		w:      bufio.NewWriterSize(f, 64<<10),
		path:   path,
	}
	l.syncCond = sync.NewCond(&l.syncMu)
	hdr := encodeHeader(states)
	if _, err := l.w.Write(hdr); err == nil {
		err = l.w.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		return nil, err
	}
	l.size = int64(len(hdr))
	if policy.Mode == ModeInterval && policy.Interval > 0 {
		l.stopTicker = make(chan struct{})
		l.tickerDone = make(chan struct{})
		go l.tickLoop()
	}
	return l, nil
}

// NewBatch returns an empty statement batch.
func (l *Log) NewBatch() *Batch { return &Batch{} }

// Commit appends the batch's records followed by a statement-boundary
// commit record and hands them to the OS, returning the statement's
// sequence number. It does not wait for the fsync — pass the sequence
// to WaitDurable for that. Empty batches commit as sequence 0 without
// touching the file.
func (l *Log) Commit(b *Batch) (uint64, error) {
	if b.n == 0 {
		return 0, nil
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	l.seq++
	seq := l.seq
	frame := appendCommit(b.buf, seq, b.n)
	_, err := l.w.Write(frame)
	l.size += int64(len(frame))
	l.dirty = true
	l.mu.Unlock()
	if err != nil {
		return 0, err
	}
	l.nCommits.Add(1)
	l.nRecords.Add(uint64(b.n + 1))
	l.nBytes.Add(uint64(len(frame)))
	return seq, nil
}

// WaitDurable blocks until the given commit sequence is on stable
// storage, sharing one fsync among all concurrently-waiting committers.
// Under ModeOS and ModeInterval it returns immediately — those policies
// trade the wait away by contract.
func (l *Log) WaitDurable(seq uint64) error {
	if seq == 0 || l.policy.Mode != ModeGrouped {
		return nil
	}
	return l.syncTo(seq)
}

// syncTo runs leader/follower group commit: the first waiter to find no
// fsync in flight becomes leader, flushes and fsyncs everything
// appended so far, and advances the durable watermark; the rest wait on
// the condvar and are satisfied by the leader's barrier.
//
// Follower waits are bounded by the policy's SyncTimeout: a leader whose
// fsync stalls in the kernel cannot be interrupted, but its followers —
// and every later waiter — give up with ErrSyncTimeout instead of
// hanging the whole commit path forever.
func (l *Log) syncTo(seq uint64) error {
	timeout := l.policy.SyncTimeout
	if timeout <= 0 {
		timeout = defaultSyncTimeout
	}
	deadline := time.Now().Add(timeout)
	led := false
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	for l.syncedSeq < seq {
		if l.syncErr != nil {
			return l.syncErr
		}
		if l.syncing {
			if !time.Now().Before(deadline) {
				l.nSyncTimeouts.Add(1)
				return fmt.Errorf("%w after %s (seq %d, durable through %d)",
					ErrSyncTimeout, timeout, seq, l.syncedSeq)
			}
			l.timedWaitLocked(deadline)
			continue
		}
		led = true
		l.syncing = true
		l.syncMu.Unlock()
		target, err := l.flushAndSync()
		l.syncMu.Lock()
		l.syncing = false
		if err != nil {
			l.syncErr = err
		} else if target > l.syncedSeq {
			l.syncedSeq = target
		}
		l.syncCond.Broadcast()
	}
	if !led {
		l.nGroupedWaits.Add(1)
	}
	return nil
}

// timedWaitLocked waits on the sync condvar until a broadcast or until
// the deadline. sync.Cond has no timed wait, so a timer broadcasts at
// the deadline to wake the waiters for their deadline check; the loop
// in syncTo re-examines the condition (and the clock) on every wakeup.
func (l *Log) timedWaitLocked(deadline time.Time) {
	t := time.AfterFunc(time.Until(deadline), func() {
		l.syncMu.Lock()
		l.syncCond.Broadcast()
		l.syncMu.Unlock()
	})
	l.syncCond.Wait()
	t.Stop()
}

// flushAndSync drains the append buffer to the OS and fsyncs, returning
// the highest sequence covered by the barrier.
func (l *Log) flushAndSync() (uint64, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	target := l.seq
	l.dirty = false
	err := l.w.Flush()
	f := l.f
	if err != nil {
		l.dirty = true
		l.mu.Unlock()
		return 0, err
	}
	l.mu.Unlock()
	if err := f.Sync(); err != nil {
		return 0, err
	}
	l.nSyncs.Add(1)
	return target, nil
}

// Sync forces everything appended so far to stable storage regardless
// of policy. DB.Sync and checkpointing use it as a barrier.
func (l *Log) Sync() error {
	target, err := l.flushAndSync()
	if err != nil {
		return err
	}
	l.syncMu.Lock()
	if target > l.syncedSeq {
		l.syncedSeq = target
	}
	l.syncCond.Broadcast()
	l.syncMu.Unlock()
	return nil
}

// PageImage appends a full image of a heap page about to be rewritten
// in place. Replay restores the image before re-applying later records,
// so a torn in-place write can never corrupt committed tuples.
func (l *Log) PageImage(table string, page int64, data []byte) error {
	frame := appendPageImage(nil, table, page, data)
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	_, err := l.w.Write(frame)
	l.size += int64(len(frame))
	l.dirty = true
	l.mu.Unlock()
	if err != nil {
		return err
	}
	l.nPageImages.Add(1)
	l.nRecords.Add(1)
	l.nBytes.Add(uint64(len(frame)))
	return nil
}

// SyncForWriteback fsyncs the log if anything was appended since the
// last barrier. The buffer pool calls it between logging a page image
// and rewriting the page in place: the image must be on stable storage
// before the write it protects against can tear.
func (l *Log) SyncForWriteback() error {
	l.mu.Lock()
	dirty := l.dirty
	l.mu.Unlock()
	if !dirty {
		return nil
	}
	return l.Sync()
}

// Checkpoint truncates the log and writes a fresh header with the given
// committed base state. The caller must have flushed and fsynced every
// table to exactly that state first; pending durability waiters are
// released as satisfied because their effects are now in the base.
func (l *Log) Checkpoint(states []TableState) error {
	// Take the sync token so no group-commit leader fsyncs a file that
	// is being truncated under it.
	l.syncMu.Lock()
	for l.syncing {
		l.syncCond.Wait()
	}
	l.syncing = true
	l.syncMu.Unlock()

	l.mu.Lock()
	err := l.resetLocked(states)
	seq := l.seq
	l.mu.Unlock()

	l.syncMu.Lock()
	l.syncing = false
	if err == nil {
		l.syncedSeq = seq
		l.syncErr = nil
	}
	l.syncCond.Broadcast()
	l.syncMu.Unlock()
	if err == nil {
		l.nCheckpoints.Add(1)
	}
	return err
}

// resetLocked rewrites the file as an empty log over a fresh header.
// Unflushed buffered records are discarded — the checkpointed base
// supersedes them.
func (l *Log) resetLocked(states []TableState) error {
	if l.closed {
		return ErrClosed
	}
	l.w.Reset(l.f)
	if err := l.f.Truncate(0); err != nil {
		return err
	}
	if _, err := l.f.Seek(0, 0); err != nil {
		return err
	}
	hdr := encodeHeader(states)
	if _, err := l.w.Write(hdr); err != nil {
		return err
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.size = int64(len(hdr))
	l.dirty = false
	return nil
}

// Size reports the current log file size, used to decide when to
// checkpoint.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Stats snapshots log activity counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	size, seq := l.size, l.seq
	l.mu.Unlock()
	l.syncMu.Lock()
	synced := l.syncedSeq
	l.syncMu.Unlock()
	return Stats{
		Commits:      l.nCommits.Load(),
		Syncs:        l.nSyncs.Load(),
		GroupedWaits: l.nGroupedWaits.Load(),
		Records:      l.nRecords.Load(),
		Bytes:        l.nBytes.Load(),
		PageImages:   l.nPageImages.Load(),
		Checkpoints:  l.nCheckpoints.Load(),
		SyncTimeouts: l.nSyncTimeouts.Load(),
		Size:         size,
		LastSeq:      seq,
		SyncedSeq:    synced,
		Policy:       l.policy.String(),
	}
}

// tickLoop drives ModeInterval background fsyncs until Close.
func (l *Log) tickLoop() {
	defer close(l.tickerDone)
	t := time.NewTicker(l.policy.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.stopTicker:
			return
		case <-t.C:
			if err := l.Sync(); err != nil && !errors.Is(err, ErrClosed) {
				l.syncMu.Lock()
				if l.syncErr == nil {
					l.syncErr = err
				}
				l.syncMu.Unlock()
			}
		}
	}
}

// Close flushes, fsyncs, and closes the log file. Waiters blocked in
// WaitDurable are released with ErrClosed unless already satisfied.
// Close is idempotent.
func (l *Log) Close() error {
	l.closeOnce.Do(func() { l.closeErr = l.doClose() })
	return l.closeErr
}

func (l *Log) doClose() error {
	if l.stopTicker != nil {
		close(l.stopTicker)
		<-l.tickerDone
	}
	_, err := l.flushAndSync()
	l.mu.Lock()
	l.closed = true
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.mu.Unlock()
	l.syncMu.Lock()
	if l.syncErr == nil {
		l.syncErr = ErrClosed
	}
	l.syncCond.Broadcast()
	l.syncMu.Unlock()
	return err
}
