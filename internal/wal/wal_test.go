package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// memApplier records everything replay delivers, in order.
type memApplier struct {
	ops    []Op
	images []struct {
		table string
		page  int64
		data  []byte
	}
	failAfterOps int // when > 0, ApplyOp fails once this many ops applied
}

func (m *memApplier) ApplyOp(op Op) error {
	if m.failAfterOps > 0 && len(m.ops) >= m.failAfterOps {
		return fmt.Errorf("applier: injected failure after %d ops", m.failAfterOps)
	}
	// Copy Data: replay hands out slices of the file image.
	if op.Data != nil {
		op.Data = append([]byte(nil), op.Data...)
	}
	m.ops = append(m.ops, op)
	return nil
}

func (m *memApplier) ApplyPageImage(table string, page int64, data []byte) error {
	m.images = append(m.images, struct {
		table string
		page  int64
		data  []byte
	}{table, page, append([]byte(nil), data...)})
	return nil
}

func logPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "wal")
}

func mustCreate(t *testing.T, path string, states []TableState, p SyncPolicy) *Log {
	t.Helper()
	l, err := Create(path, states, p)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return l
}

func TestRoundTrip(t *testing.T) {
	path := logPath(t)
	states := []TableState{{Name: "T", Pages: 3}, {Name: "U", Pages: 0}}
	l := mustCreate(t, path, states, Grouped())

	b := l.NewBatch()
	b.Insert("T", 2, 5, []byte("hello"))
	b.Update("T", 0, 1, []byte("world"))
	b.Delete("U", 1, 7)
	seq, err := l.Commit(b)
	if err != nil || seq != 1 {
		t.Fatalf("Commit = %d, %v", seq, err)
	}
	if err := l.WaitDurable(seq); err != nil {
		t.Fatalf("WaitDurable: %v", err)
	}
	img := bytes.Repeat([]byte{0xAB}, 4096)
	if err := l.PageImage("T", 1, img); err != nil {
		t.Fatalf("PageImage: %v", err)
	}
	b2 := l.NewBatch()
	b2.Insert("U", 0, 0, []byte("x"))
	seq2, err := l.Commit(b2)
	if err != nil || seq2 != 2 {
		t.Fatalf("Commit 2 = %d, %v", seq2, err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	var a memApplier
	st, err := Replay(path, &a)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if st.Statements != 2 || st.Ops != 4 || st.PageImages != 1 || st.DiscardedBytes != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if len(st.Header) != 2 || st.Header[0] != states[0] || st.Header[1] != states[1] {
		t.Fatalf("header = %+v", st.Header)
	}
	if len(a.ops) != 4 {
		t.Fatalf("ops = %+v", a.ops)
	}
	if !a.ops[0].IsInsert() || a.ops[0].Table != "T" || a.ops[0].Page != 2 ||
		a.ops[0].Slot != 5 || string(a.ops[0].Data) != "hello" {
		t.Fatalf("op0 = %+v", a.ops[0])
	}
	if !a.ops[1].IsUpdate() || string(a.ops[1].Data) != "world" {
		t.Fatalf("op1 = %+v", a.ops[1])
	}
	if !a.ops[2].IsDelete() || a.ops[2].Table != "U" || a.ops[2].Data != nil {
		t.Fatalf("op2 = %+v", a.ops[2])
	}
	if len(a.images) != 1 || a.images[0].page != 1 || !bytes.Equal(a.images[0].data, img) {
		t.Fatalf("images = %d", len(a.images))
	}
	if st.MaxPage["T"] != 2 || st.MaxPage["U"] != 1 {
		t.Fatalf("MaxPage = %v", st.MaxPage)
	}
}

func TestEmptyBatchCommitsAsZero(t *testing.T) {
	path := logPath(t)
	l := mustCreate(t, path, nil, Grouped())
	seq, err := l.Commit(l.NewBatch())
	if err != nil || seq != 0 {
		t.Fatalf("Commit(empty) = %d, %v", seq, err)
	}
	if err := l.WaitDurable(0); err != nil {
		t.Fatalf("WaitDurable(0): %v", err)
	}
	if got := l.Size(); got != int64(len(encodeHeader(nil))) {
		t.Fatalf("empty commit grew the log to %d bytes", got)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestTornTailFailsClosed truncates the log at every possible byte
// length and checks replay applies a prefix of whole statements —
// never part of one — and never errors.
func TestTornTailFailsClosed(t *testing.T) {
	path := logPath(t)
	l := mustCreate(t, path, []TableState{{Name: "T", Pages: 1}}, Grouped())
	for i := 0; i < 5; i++ {
		b := l.NewBatch()
		b.Insert("T", int64(i), 0, []byte{byte(i), byte(i)})
		b.Delete("T", int64(i), 1)
		if _, err := l.Commit(b); err != nil {
			t.Fatalf("Commit: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut <= len(full); cut++ {
		var a memApplier
		st, err := ReplayBytes(full[:cut], &a)
		if cut < headerLen(t, full) {
			if err == nil {
				t.Fatalf("cut=%d: corrupt header accepted", cut)
			}
			continue
		}
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if st.Ops%2 != 0 || len(a.ops)%2 != 0 {
			t.Fatalf("cut=%d: half a statement applied (%d ops)", cut, len(a.ops))
		}
		if int64(len(a.ops)) != st.Ops {
			t.Fatalf("cut=%d: stats/applier disagree", cut)
		}
		want := int64(len(full[:cut])) // discarded + applied prefix cover the input
		if st.DiscardedBytes < 0 || st.DiscardedBytes > want {
			t.Fatalf("cut=%d: DiscardedBytes=%d", cut, st.DiscardedBytes)
		}
	}
}

// TestBitFlipFailsClosed flips one byte at every offset of a valid log
// and checks replay still applies only whole statements.
func TestBitFlipFailsClosed(t *testing.T) {
	path := logPath(t)
	l := mustCreate(t, path, []TableState{{Name: "T", Pages: 1}}, Grouped())
	for i := 0; i < 3; i++ {
		b := l.NewBatch()
		b.Insert("T", int64(i), 0, []byte("abcdef"))
		if _, err := l.Commit(b); err != nil {
			t.Fatalf("Commit: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(full); off++ {
		mut := append([]byte(nil), full...)
		mut[off] ^= 0x40
		var a memApplier
		st, err := ReplayBytes(mut, &a)
		if err != nil {
			continue // corrupt header: refused outright, nothing applied
		}
		if len(a.ops) != int(st.Ops) || st.Ops > 3 {
			t.Fatalf("off=%d: stats=%+v ops=%d", off, st, len(a.ops))
		}
		for _, op := range a.ops {
			// Any op that survives must be byte-perfect: its CRC held.
			if op.Table != "T" || string(op.Data) != "abcdef" {
				t.Fatalf("off=%d: corrupted op applied: %+v", off, op)
			}
		}
	}
}

func headerLen(t *testing.T, full []byte) int {
	t.Helper()
	_, off, err := decodeHeader(full)
	if err != nil {
		t.Fatalf("decodeHeader on valid log: %v", err)
	}
	return int(off)
}

func TestApplierErrorAborts(t *testing.T) {
	path := logPath(t)
	l := mustCreate(t, path, nil, Grouped())
	b := l.NewBatch()
	b.Insert("T", 0, 0, []byte("a"))
	b.Insert("T", 0, 1, []byte("b"))
	if _, err := l.Commit(b); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	a := &memApplier{failAfterOps: 1}
	if _, err := Replay(path, a); err == nil {
		t.Fatal("applier error swallowed")
	}
}

func TestCheckpointTruncatesAndReleasesWaiters(t *testing.T) {
	path := logPath(t)
	l := mustCreate(t, path, []TableState{{Name: "T", Pages: 1}}, Grouped())
	for i := 0; i < 10; i++ {
		b := l.NewBatch()
		b.Insert("T", 0, i, []byte("payload"))
		if _, err := l.Commit(b); err != nil {
			t.Fatal(err)
		}
	}
	before := l.Size()
	newStates := []TableState{{Name: "T", Pages: 4}}
	if err := l.Checkpoint(newStates); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if after := l.Size(); after >= before {
		t.Fatalf("checkpoint did not shrink the log: %d -> %d", before, after)
	}
	// Replaying the truncated log yields the new base and nothing else.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var a memApplier
	st, err := Replay(path, &a)
	if err != nil {
		t.Fatal(err)
	}
	if st.Statements != 0 || len(st.Header) != 1 || st.Header[0].Pages != 4 {
		t.Fatalf("post-checkpoint stats = %+v", st)
	}
}

// TestGroupCommit drives many goroutines through commit+wait and checks
// the fsync count stays well below the commit count (the whole point of
// group commit), with every waiter satisfied.
func TestGroupCommit(t *testing.T) {
	path := logPath(t)
	l := mustCreate(t, path, nil, Grouped())
	const workers, per = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				b := l.NewBatch()
				b.Insert("T", int64(w), i, []byte("tuple"))
				seq, err := l.Commit(b)
				if err == nil {
					err = l.WaitDurable(seq)
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("worker: %v", err)
	}
	st := l.Stats()
	if st.Commits != workers*per {
		t.Fatalf("commits = %d", st.Commits)
	}
	if st.SyncedSeq < uint64(workers*per) {
		t.Fatalf("synced watermark %d below last commit %d", st.SyncedSeq, workers*per)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var a memApplier
	rst, err := Replay(path, &a)
	if err != nil {
		t.Fatal(err)
	}
	if rst.Statements != workers*per {
		t.Fatalf("replayed %d of %d statements", rst.Statements, workers*per)
	}
}

// TestGroupCommitAmortizes proves one fsync covers every commit that
// was appended before the barrier: ten commits, then a single wait on
// the last sequence, costs exactly one fsync, and waiting on earlier
// sequences afterwards costs none.
func TestGroupCommitAmortizes(t *testing.T) {
	path := logPath(t)
	l := mustCreate(t, path, nil, Grouped())
	var last uint64
	for i := 0; i < 10; i++ {
		b := l.NewBatch()
		b.Insert("T", 0, i, []byte("row"))
		seq, err := l.Commit(b)
		if err != nil {
			t.Fatal(err)
		}
		last = seq
	}
	if got := l.Stats().Syncs; got != 0 {
		t.Fatalf("commit alone fsynced (%d times)", got)
	}
	if err := l.WaitDurable(last); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Syncs; got != 1 {
		t.Fatalf("one barrier took %d fsyncs", got)
	}
	for seq := uint64(1); seq < last; seq++ {
		if err := l.WaitDurable(seq); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Syncs != 1 {
		t.Fatalf("already-durable waits re-synced: %d fsyncs", st.Syncs)
	}
	if st.GroupedWaits == 0 {
		t.Fatal("no grouped waits recorded")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalPolicySyncsInBackground(t *testing.T) {
	path := logPath(t)
	l := mustCreate(t, path, nil, Every(5*time.Millisecond))
	b := l.NewBatch()
	b.Insert("T", 0, 0, []byte("x"))
	seq, err := l.Commit(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WaitDurable(seq); err != nil { // must not block under interval policy
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for l.Stats().SyncedSeq < seq {
		if time.Now().After(deadline) {
			t.Fatalf("background sync never covered seq %d", seq)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCloseIdempotentAndClosedErrors(t *testing.T) {
	path := logPath(t)
	l := mustCreate(t, path, nil, Grouped())
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := l.Commit(func() *Batch { b := l.NewBatch(); b.Delete("T", 0, 0); return b }()); err != ErrClosed {
		t.Fatalf("Commit after Close = %v", err)
	}
	if err := l.PageImage("T", 0, make([]byte, 8)); err != ErrClosed {
		t.Fatalf("PageImage after Close = %v", err)
	}
}
