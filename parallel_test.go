package sma

import (
	"testing"

	"sma/internal/tpcd"
	"sma/internal/tuple"
)

// collectAll drains a query into rendered rows.
func collectAll(t *testing.T, db *DB, sql string, opts ...QueryOption) *Result {
	t.Helper()
	rows, err := db.Query(sql, opts...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Collect(rows)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestPublicParallelism exercises the public parallel surface: the
// WithQueryParallelism per-query override produces the same rendered rows
// as a serial run on all plan shapes, the plan reports its dop, and
// Rows.Stats exposes the merged per-query scan statistics.
func TestPublicParallelism(t *testing.T) {
	db := openLineItem(t, 0.002, tpcd.OrderSorted)
	defineQ1SMAs(t, db)

	serial := collectAll(t, db, query1, WithQueryParallelism(1))
	par := collectAll(t, db, query1, WithQueryParallelism(4))
	if serial.Strategy != "SMA_GAggr" || par.Strategy != serial.Strategy {
		t.Fatalf("strategies: serial %s parallel %s", serial.Strategy, par.Strategy)
	}
	if len(serial.Rows) == 0 {
		t.Fatal("no rows")
	}
	if len(serial.Rows) != len(par.Rows) {
		t.Fatalf("rows: %d serial vs %d parallel", len(serial.Rows), len(par.Rows))
	}
	for i := range serial.Rows {
		for j := range serial.Rows[i] {
			if serial.Rows[i][j] != par.Rows[i][j] {
				t.Errorf("row %d col %d: %q vs %q", i, j, serial.Rows[i][j], par.Rows[i][j])
			}
		}
	}

	plan, err := db.Plan(query1)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Parallelism != 1 {
		t.Errorf("default plan parallelism = %d, want 1 (serial database)", plan.Parallelism)
	}

	// Stats: with shipdate-sorted data and the delta-90 cutoff, most
	// buckets qualify and a few disqualify; the merged parallel stats must
	// match the serial grading exactly.
	rows, err := db.Query(query1, WithQueryParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	st, ok := rows.Stats()
	if !ok {
		t.Fatal("no stats for aggregation query")
	}
	if st.QualifyingBuckets == 0 || st.DisqualifyingBuckets == 0 {
		t.Errorf("stats = %+v, want qualifying and disqualifying buckets", st)
	}
}

// TestPublicWithParallelismOption: a database opened with WithParallelism
// plans parallel execution by default and still matches serial results.
func TestPublicWithParallelismOption(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(tpcd.LineItemDDL); err != nil {
		t.Fatal(err)
	}
	li, err := db.eng.Table("LINEITEM")
	if err != nil {
		t.Fatal(err)
	}
	items := tpcd.GenLineItems(tpcd.Config{ScaleFactor: 0.001, Seed: 7, Order: tpcd.OrderSorted})
	tp := tuple.NewTuple(li.Schema)
	for i := range items {
		items[i].FillTuple(tp)
		if _, err := li.Append(tp); err != nil {
			t.Fatal(err)
		}
	}

	plan, err := db.Plan(query1)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Parallelism != 4 {
		t.Errorf("plan parallelism = %d, want 4", plan.Parallelism)
	}
	par := collectAll(t, db, query1)                             // database default: dop 4
	serial := collectAll(t, db, query1, WithQueryParallelism(1)) // per-query override back to serial
	if len(par.Rows) != len(serial.Rows) {
		t.Fatalf("rows: %d parallel vs %d serial", len(par.Rows), len(serial.Rows))
	}
	for i := range par.Rows {
		for j := range par.Rows[i] {
			if par.Rows[i][j] != serial.Rows[i][j] {
				t.Errorf("row %d col %d: %q vs %q", i, j, par.Rows[i][j], serial.Rows[i][j])
			}
		}
	}
}
