package sma

import "fmt"

// PlanInfo describes the physical plan the SMA-aware planner chose for a
// query, including the §3.1 bucket partition and the Fig.-5 cost
// comparison that drives the SMA-vs-scan decision.
type PlanInfo struct {
	// Strategy is the plan shape: "SMA_GAggr", "SMA_Scan+GAggr", or
	// "FullScan+GAggr".
	Strategy string
	Table    string
	// Predicate is the rendered WHERE clause ("" when absent).
	Predicate string
	// Qualifying, Disqualifying, and Ambivalent partition the buckets
	// under the predicate.
	Qualifying    int
	Disqualifying int
	Ambivalent    int
	// CostSMA and CostScan are the modeled page costs of the SMA plan and
	// the sequential scan; SMAPages is the SMA-file volume the plan reads.
	CostSMA  float64
	CostScan float64
	SMAPages int64
	// Parallelism is the degree of intra-query parallelism the plan
	// executes with (1 = serial).
	Parallelism int
	// Reason explains the decision.
	Reason string
}

// AmbivalentFrac returns the ambivalent share of all buckets.
func (p *PlanInfo) AmbivalentFrac() float64 {
	total := p.Qualifying + p.Disqualifying + p.Ambivalent
	if total == 0 {
		return 0
	}
	return float64(p.Ambivalent) / float64(total)
}

// Explain renders a one-line plan description plus cost details.
func (p *PlanInfo) Explain() string {
	var b []byte
	b = fmt.Appendf(b, "%s on %s", p.Strategy, p.Table)
	if p.Predicate != "" {
		b = fmt.Appendf(b, " where %s", p.Predicate)
	}
	b = fmt.Appendf(b, "\n  buckets: %d qualify / %d disqualify / %d ambivalent (%.1f%%)",
		p.Qualifying, p.Disqualifying, p.Ambivalent, 100*p.AmbivalentFrac())
	b = fmt.Appendf(b, "\n  cost: sma=%.0f scan=%.0f (sma pages %d)", p.CostSMA, p.CostScan, p.SMAPages)
	if p.Parallelism > 1 {
		b = fmt.Appendf(b, "\n  parallel: dop=%d", p.Parallelism)
	}
	b = fmt.Appendf(b, "\n  %s", p.Reason)
	return string(b)
}

// Plan parses and plans a query without executing it.
func (db *DB) Plan(query string) (*PlanInfo, error) {
	plan, err := db.eng.Plan(query)
	if err != nil {
		return nil, err
	}
	info := &PlanInfo{
		Strategy:      plan.StrategyName(),
		Table:         plan.Query.Table,
		Qualifying:    plan.Grades.Qualifying,
		Disqualifying: plan.Grades.Disqualifying,
		Ambivalent:    plan.Grades.Ambivalent,
		CostSMA:       plan.CostSMA,
		CostScan:      plan.CostScan,
		SMAPages:      plan.SMAPages,
		Parallelism:   plan.DOP,
		Reason:        plan.Reason,
	}
	if plan.Query.Where != nil {
		info.Predicate = fmt.Sprint(plan.Query.Where)
	}
	return info, nil
}
