package sma

import (
	"fmt"
	"strconv"
	"strings"
)

// Result is a fully rendered query result: column names plus rows of
// display strings. It is a convenience for CLIs and examples; programs
// that process values should iterate the streaming Rows cursor instead.
type Result struct {
	Columns  []string
	Rows     [][]string
	Strategy string
}

// Collect drains a streaming cursor into a rendered Result and closes it.
// Aggregates render with integral values trimmed ("4" not "4.0000"),
// dates as "YYYY-MM-DD".
func Collect(rows *Rows) (res *Result, err error) {
	defer func() {
		if cerr := rows.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			res = nil
		}
	}()
	res = &Result{Columns: rows.Columns(), Strategy: rows.Strategy()}
	for rows.Next() {
		out, rerr := rows.RowStrings()
		if rerr != nil {
			return nil, rerr
		}
		res.Rows = append(res.Rows, out)
	}
	if err := rows.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// renderValue formats one cursor value for display. Aggregates follow the
// engine's historical formatting (integral floats trimmed, else 4
// decimals); other floats use the shortest representation.
func renderValue(v any, isAgg bool) string {
	switch x := v.(type) {
	case string:
		return x
	case int64:
		return strconv.FormatInt(x, 10)
	case int32: // date columns
		return Date(x).String()
	case float64:
		if isAgg {
			if x == float64(int64(x)) {
				return strconv.FormatInt(int64(x), 10)
			}
			return fmt.Sprintf("%.4f", x)
		}
		return strconv.FormatFloat(x, 'g', -1, 64)
	default:
		return fmt.Sprint(x)
	}
}

// String renders the result as an aligned text table.
func (r *Result) String() string {
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, v := range row {
			if len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Columns)
	sep := make([]string, len(r.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range r.Rows {
		writeRow(row)
	}
	return b.String()
}
