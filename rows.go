package sma

import (
	"fmt"
	"math"
	"time"

	"sma/internal/engine"
)

// Rows is a streaming query cursor in the style of database/sql: call Next
// until it returns false, Scan inside the loop, then check Err and Close.
// Rows pulls from the exec-layer iterator pipeline one row at a time; the
// full result is never materialized by the cursor. The database read lock
// is held while the cursor is open and released by Close or when the
// stream ends.
type Rows struct {
	cur  *engine.Cursor
	cols []engine.ColInfo
	vals []any
	err  error
	done bool
}

// Columns returns the output column names in select-list order.
func (r *Rows) Columns() []string {
	out := make([]string, len(r.cols))
	for i, c := range r.cols {
		out[i] = c.Name
	}
	return out
}

// ColumnTypes returns the value type of each output column. Aggregate
// columns are TypeFloat64.
func (r *Rows) ColumnTypes() []ColumnType {
	out := make([]ColumnType, len(r.cols))
	for i, c := range r.cols {
		if c.IsAgg {
			out[i] = TypeFloat64
		} else {
			out[i] = fromTupleType(c.Type)
		}
	}
	return out
}

// Strategy names the physical plan executing the query (diagnostics).
func (r *Rows) Strategy() string { return r.cur.Plan().StrategyName() }

// Parallelism returns the degree of intra-query parallelism the plan
// executes with (1 = serial).
func (r *Rows) Parallelism() int { return r.cur.Plan().DOP }

// QueryStats reports how the executed query classified and touched the
// relation: the §3.1 bucket partition the scan observed and the heap pages
// it fetched. For parallel plans the counts are merged across all
// partition workers.
type QueryStats struct {
	QualifyingBuckets    int
	DisqualifyingBuckets int
	AmbivalentBuckets    int
	PagesRead            int
	// Batches counts the tuple batches the vectorized operators produced
	// (0 when the query ran on the legacy row path).
	Batches int
	// PagesPrefetched counts heap pages the asynchronous prefetcher read
	// ahead of the scan cursors.
	PagesPrefetched int
	// PrefetchHits counts page fetches that found their page already
	// resident because readahead got there first.
	PrefetchHits int
}

// Stats returns the query's scan statistics and whether the plan tracks
// any. For aggregation queries stats are complete as soon as the Rows
// exist (the aggregation runs up front); for projections they are complete
// when the stream ends.
func (r *Rows) Stats() (QueryStats, bool) {
	s, ok := r.cur.Stats()
	if !ok {
		return QueryStats{}, false
	}
	return QueryStats{
		QualifyingBuckets:    s.Qualifying,
		DisqualifyingBuckets: s.Disqualifying,
		AmbivalentBuckets:    s.Ambivalent,
		PagesRead:            s.PagesRead,
		Batches:              s.Batches,
		PagesPrefetched:      s.PagesPrefetched,
		PrefetchHits:         s.PrefetchHits,
	}, true
}

// Trace returns the query's span tree when it was traced (WithQueryTrace
// or EXPLAIN ANALYZE) and the stream has ended; nil otherwise. The tree
// mirrors the executed pipeline — parse, plan/grade, execute with
// sort/fold/scan (or merge with per-worker spans) — with per-span wall
// time, rows, pages, and bucket grading counts.
func (r *Rows) Trace() *TraceNode { return r.cur.TraceNode() }

// QueryID returns the identifier the observability layer assigned this
// query ("" with observability disabled). It tags the query's log
// records and server-side request logs.
func (r *Rows) QueryID() string { return r.cur.QueryID() }

// Next advances to the next row, returning false at end of stream or on
// error (check Err to tell them apart). When Next returns false the read
// lock has been released.
func (r *Rows) Next() bool {
	if r.done {
		return false
	}
	vals, ok, err := r.cur.Next()
	if err != nil {
		r.err = err
		r.done = true
		return false
	}
	if !ok {
		r.done = true
		return false
	}
	r.vals = vals
	return true
}

// Err returns the error that terminated iteration, if any. A query
// cancelled via its context reports context.Canceled (or
// context.DeadlineExceeded).
func (r *Rows) Err() error { return r.err }

// Close releases the cursor and the database read lock. Close is
// idempotent and safe after the stream has ended.
func (r *Rows) Close() error { return r.cur.Close() }

// Scan copies the current row into dest, one pointer per column. Supported
// destinations per value type:
//
//	int64 columns:   *int64, *int, *int32 (in range), *float64, *any
//	float64 columns: *float64, *int64 (integral values only), *any
//	string columns:  *string, *any
//	date columns:    *Date, *time.Time, *string ("YYYY-MM-DD"), *any (Date)
func (r *Rows) Scan(dest ...any) error {
	if r.vals == nil {
		return fmt.Errorf("sma: Scan called without a successful Next")
	}
	if len(dest) != len(r.vals) {
		return fmt.Errorf("sma: Scan expected %d destinations, got %d", len(r.vals), len(dest))
	}
	for i, v := range r.vals {
		if err := scanValue(dest[i], v); err != nil {
			return fmt.Errorf("sma: column %s: %w", r.cols[i].Name, err)
		}
	}
	return nil
}

// RowStrings renders the current row with the engine's display rules —
// the same rendering Collect uses: aggregates with integral values trimmed
// ("4" not "4.0000"), dates as "YYYY-MM-DD". Serving layers stream these
// strings so every consumer of a result sees identical bytes.
func (r *Rows) RowStrings() ([]string, error) {
	if r.vals == nil {
		return nil, fmt.Errorf("sma: RowStrings called without a successful Next")
	}
	out := make([]string, len(r.vals))
	for i, v := range r.vals {
		out[i] = renderValue(v, r.cols[i].IsAgg)
	}
	return out, nil
}

// Values returns the current row as typed values: int64, float64, string,
// or Date per column. The slice is freshly allocated each call.
func (r *Rows) Values() ([]any, error) {
	if r.vals == nil {
		return nil, fmt.Errorf("sma: Values called without a successful Next")
	}
	out := make([]any, len(r.vals))
	for i, v := range r.vals {
		if d, ok := v.(int32); ok {
			out[i] = Date(d)
		} else {
			out[i] = v
		}
	}
	return out, nil
}

// scanValue converts one cursor value (int64/float64/string/int32-date)
// into the destination pointer.
func scanValue(dest, v any) error {
	switch src := v.(type) {
	case int64:
		switch d := dest.(type) {
		case *int64:
			*d = src
		case *int:
			*d = int(src)
		case *int32:
			if src < math.MinInt32 || src > math.MaxInt32 {
				return fmt.Errorf("value %d overflows *int32", src)
			}
			*d = int32(src)
		case *float64:
			*d = float64(src)
		case *any:
			*d = src
		default:
			return fmt.Errorf("cannot scan int64 into %T", dest)
		}
	case float64:
		switch d := dest.(type) {
		case *float64:
			*d = src
		case *int64:
			if src != float64(int64(src)) {
				return fmt.Errorf("cannot scan non-integral %v into *int64", src)
			}
			*d = int64(src)
		case *any:
			*d = src
		default:
			return fmt.Errorf("cannot scan float64 into %T", dest)
		}
	case string:
		switch d := dest.(type) {
		case *string:
			*d = src
		case *any:
			*d = src
		default:
			return fmt.Errorf("cannot scan string into %T", dest)
		}
	case int32: // date columns
		switch d := dest.(type) {
		case *Date:
			*d = Date(src)
		case *time.Time:
			*d = Date(src).Time()
		case *string:
			*d = Date(src).String()
		case *any:
			*d = Date(src)
		default:
			return fmt.Errorf("cannot scan date into %T", dest)
		}
	default:
		return fmt.Errorf("unsupported cursor value %T", v)
	}
	return nil
}
