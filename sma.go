// Package sma is the public face of the library: an embedded warehouse
// engine built on Small Materialized Aggregates (Moerkotte, VLDB '98).
// It owns an on-disk catalog, tables, and SMAs, and runs SQL through an
// SMA-aware planner that answers selective aggregate queries mostly from
// the SMA-files instead of the relation's pages.
//
// Typical use:
//
//	db, _ := sma.Open(dir)
//	defer db.Close()
//	db.Exec(`create table SALES (SALE_DATE date, REGION char(1), AMOUNT float64)`)
//	tbl, _ := db.Table("SALES")
//	tbl.Append(sma.DateOf(2020, 1, 2), "N", 129.95)
//	db.Exec(`define sma amt select sum(AMOUNT) from SALES group by REGION`)
//	rows, _ := db.QueryContext(ctx, `select REGION, sum(AMOUNT) as REV from SALES
//	    where SALE_DATE <= date '2020-03-31' group by REGION`)
//	defer rows.Close()
//	for rows.Next() {
//	    var region string
//	    var rev float64
//	    rows.Scan(&region, &rev)
//	}
//
// Queries stream: QueryContext returns a cursor that pulls from the
// exec-layer iterator pipeline one row at a time, carrying typed values
// (int64, float64, string, Date) rather than rendered strings. The
// database read lock is held while a cursor is open and released on Close
// (or when the stream ends), so hold cursors briefly and never run DDL on
// the same goroutine before closing an open cursor. Cancelling the
// query's context aborts scans at the next bucket or page boundary.
package sma

import (
	"context"
	"io"
	"log/slog"
	"time"

	"sma/internal/engine"
	"sma/internal/obs"
	"sma/internal/storage"
	"sma/internal/wal"
)

// openConfig collects Open options: the engine knobs plus the
// observability configuration the Observer is built from.
type openConfig struct {
	eng    engine.Options
	logger *slog.Logger
	slow   time.Duration
	noObs  bool
}

// Option configures an engine instance; pass options to Open.
type Option func(*openConfig)

// WithPoolPages sets the buffer pool capacity per table in pages
// (default 2048 pages = 8 MB, the paper's intertransaction buffer size).
func WithPoolPages(n int) Option {
	return func(o *openConfig) { o.eng.PoolPages = n }
}

// WithBucketPages sets the SMA bucket granularity for new tables in pages
// (default 1 page, the paper's default).
func WithBucketPages(n int) Option {
	return func(o *openConfig) { o.eng.BucketPages = n }
}

// SyncPolicy selects when committed statements reach stable storage.
// The zero value (and SyncGrouped) fsyncs the redo log before every DML
// statement returns, amortizing one fsync over all concurrently
// committing statements via group commit. SyncOSOnly and SyncEvery trade
// power-loss durability for throughput; process crashes lose nothing
// under any policy.
type SyncPolicy = wal.SyncPolicy

// SyncGrouped returns the default policy: a group-committed fsync before
// every statement returns. Power-loss safe.
func SyncGrouped() SyncPolicy { return wal.Grouped() }

// SyncOSOnly returns the write-to-OS policy: commits are handed to the
// operating system without fsync. Survives a process crash, not a power
// cut; call DB.Sync for a manual durability point.
func SyncOSOnly() SyncPolicy { return wal.OSOnly() }

// SyncEvery returns the background-fsync policy: a ticker forces the log
// every d, bounding power-loss exposure to one tick.
func SyncEvery(d time.Duration) SyncPolicy { return wal.Every(d) }

// WithSyncPolicy sets the redo-log durability policy (default
// SyncGrouped).
func WithSyncPolicy(p SyncPolicy) Option {
	return func(o *openConfig) { o.eng.SyncPolicy = p }
}

// WithCheckpointBytes sets the redo-log size that triggers a checkpoint
// — flushing every table and truncating the log (default 8 MB). Smaller
// values bound recovery time; larger ones batch more work per
// checkpoint.
func WithCheckpointBytes(n int64) Option {
	return func(o *openConfig) { o.eng.CheckpointBytes = n }
}

// WithReadLatency simulates per-page disk read latency; useful for
// benchmarks that reproduce the paper's disk model.
func WithReadLatency(d time.Duration) Option {
	return func(o *openConfig) { o.eng.ReadLatency = d }
}

// WithBatchSize sets the tuples-per-batch target of the vectorized read
// path (default 1024 tuples). The batched operators decode each heap page
// into a reusable batch once, evaluate the predicate as a tight loop
// producing a selection vector, and fold aggregates per batch instead of
// per tuple. Passing a negative n disables batching: plans fall back to
// the legacy row-at-a-time iterators (the pre-batch execution engine,
// kept as the projection-streaming substrate and for A/B comparison).
func WithBatchSize(n int) Option {
	return func(o *openConfig) { o.eng.BatchSize = n }
}

// WithPrefetchWindow sets the number of pages of SMA-guided asynchronous
// readahead per scan (default 16). Because bucket grading computes the
// exact surviving page set before the first page access, the prefetcher
// never reads a page the query will skip; it stays at most n pages ahead
// of the cursor and is derated per worker under parallelism. Passing a
// negative n disables prefetch.
func WithPrefetchWindow(n int) Option {
	return func(o *openConfig) { o.eng.PrefetchWindow = n }
}

// WithParallelism sets the default degree of intra-query parallelism for
// aggregation queries: buckets are pre-graded with the selection SMAs,
// disqualified buckets are dropped, and the survivors are split into n
// page-balanced partitions, each executed by its own worker; the partial
// aggregates merge into one deterministic, sorted result. 0 or 1 executes
// serially (the default); runtime.NumCPU() is a good value for CPU-bound
// workloads. Individual queries can override it with WithQueryParallelism.
func WithParallelism(n int) Option {
	return func(o *openConfig) { o.eng.Parallelism = n }
}

// WithLogger attaches a structured logger: the engine logs every query
// at Debug with its query id, strategy, duration, row count, and bucket
// grading, and slow queries at Warn (see WithSlowQueryLog). Without a
// logger the records are discarded but metrics still accumulate.
func WithLogger(l *slog.Logger) Option {
	return func(o *openConfig) { o.logger = l }
}

// WithSlowQueryLog sets the slow-query threshold: queries whose total
// wall time (parse to cursor close) reaches d are logged at Warn with
// their full SQL and counted in sma_engine_slow_queries_total. 0 (the
// default) disables the slow-query log.
func WithSlowQueryLog(d time.Duration) Option {
	return func(o *openConfig) { o.slow = d }
}

// WithStatementTimeout bounds every statement's execution time: DML and
// queries run under a context that expires after d, aborting scans at
// the next bucket or page boundary. 0 (the default) disables the bound.
// Serving layers use it as the stuck-statement watchdog floor.
func WithStatementTimeout(d time.Duration) Option {
	return func(o *openConfig) { o.eng.StatementTimeout = d }
}

// WithVerifyOnOpen makes Open run a full scrub pass — every heap page
// checksum verified, every SMA file reloaded — before serving. Damage
// does not fail Open; it quarantines the pages and the database comes up
// degraded (see Degraded), so reads that can avoid the damage still work.
func WithVerifyOnOpen() Option {
	return func(o *openConfig) { o.eng.VerifyOnOpen = true }
}

// WithScrubInterval starts a background scrubber that verifies every
// page checksum and SMA file each interval, paced so a pass never
// monopolizes the disk. Corruption found by the scrubber quarantines the
// page and degrades the database exactly as a query hitting it would —
// the scrubber just finds it first. 0 (the default) disables scrubbing.
func WithScrubInterval(d time.Duration) Option {
	return func(o *openConfig) { o.eng.ScrubInterval = d }
}

// WithUnsafeCrash arms DB.Crash, the test-only kill switch that abandons
// the database without checkpointing. Without this option Crash returns
// an error, so a production embedder cannot reach it by accident.
func WithUnsafeCrash() Option {
	return func(o *openConfig) { o.eng.AllowUnsafeCrash = true }
}

// WithoutObservability disables the observability subsystem entirely —
// no metrics registry, no logs, no query ids. Tracing via EXPLAIN
// ANALYZE or WithQueryTrace still works (it is per-query state). Meant
// for embedders measuring the engine's bare overhead; the default
// observer costs roughly one counter bump and one histogram observation
// per query.
func WithoutObservability() Option {
	return func(o *openConfig) { o.noObs = true }
}

// QueryOption adjusts the execution of a single query; pass options to
// QueryContext.
type QueryOption func(*queryConfig)

// queryConfig collects per-query overrides.
type queryConfig struct {
	dop   int
	batch *int
	trace bool
}

// WithQueryParallelism overrides the database's degree of parallelism for
// one query: 1 forces serial execution, n > 1 requests n partition workers
// (capped by the work the plan dispatches), 0 keeps the database default.
func WithQueryParallelism(n int) QueryOption {
	return func(c *queryConfig) { c.dop = n }
}

// WithQueryBatchSize overrides the database's tuples-per-batch target for
// one query: 0 batches at the default size, a negative n runs the query on
// the legacy row-at-a-time iterators. Results are identical either way;
// the knob exists for A/B comparison and for serving layers that let
// clients choose per request.
func WithQueryBatchSize(n int) QueryOption {
	return func(c *queryConfig) { c.batch = &n }
}

// WithQueryTrace records a per-operator execution trace for one query:
// a span tree over the real pipeline (parse → plan → grade → execute →
// sort → fold → scan → prefetch, with one span per worker under
// parallelism), each span carrying wall time, rows, pages, and the
// paper's qualify/disqualify/ambivalent grading counts. The tree is
// available from Rows.Trace once the stream ends. Tracing costs pooled
// span records and a few time stamps per operator call; queries without
// it pay one nil check.
func WithQueryTrace() QueryOption {
	return func(c *queryConfig) { c.trace = true }
}

// DB is an embedded warehouse instance rooted at a directory. A DB is safe
// for concurrent use: queries hold a read lock while their cursor is open,
// DDL and data modification take the write lock.
type DB struct {
	eng *engine.DB
}

// Open opens (or initializes) a database directory. Observability is on
// by default: the database carries a metrics registry (rendered by
// WritePrometheus) and mints per-query ids; attach WithLogger for
// structured logs or WithoutObservability to disable the subsystem.
func Open(dir string, opts ...Option) (*DB, error) {
	var cfg openConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	if !cfg.noObs {
		cfg.eng.Obs = obs.NewObserver(obs.Config{Logger: cfg.logger, SlowQuery: cfg.slow})
	}
	eng, err := engine.Open(dir, cfg.eng)
	if err != nil {
		return nil, err
	}
	return &DB{eng: eng}, nil
}

// WritePrometheus renders every engine-side metric family — queries by
// strategy, grading outcomes, buffer pool activity, storage latency
// histograms, parallel skew/utilization — in Prometheus text exposition
// format. With observability disabled it writes nothing.
func (db *DB) WritePrometheus(w io.Writer) error { return db.eng.WritePrometheus(w) }

// Observable reports whether the observability subsystem is enabled
// (false after WithoutObservability). Serving layers use it to decide
// whether WritePrometheus contributes the engine metric families or
// they must expose fallbacks of their own.
func (db *DB) Observable() bool { return db.eng.Observer() != nil }

// TraceNode is one rendered span of a query trace: an operator (or
// phase) with its wall time, row/page/bucket counters, and children in
// pipeline order. Rows.Trace returns the root after a traced query
// finishes; TraceNode.Render prints the tree EXPLAIN ANALYZE style.
type TraceNode = obs.TraceNode

// Dir returns the database directory.
func (db *DB) Dir() string { return db.eng.Dir() }

// Close flushes and closes every table, persisting delete vectors. Close
// is idempotent: a second call is a no-op. Close blocks until open cursors
// release their read locks.
func (db *DB) Close() error { return db.eng.Close() }

// TableNames lists table names in sorted order.
func (db *DB) TableNames() []string { return db.eng.Tables() }

// Tables returns a catalog snapshot: every table in name order with its
// schema, live row count, heap size, and defined SMAs. It is the
// inspection surface CLIs and the query server's /status endpoint report
// from, so tools never reach into engine internals.
func (db *DB) Tables() []TableInfo {
	names := db.eng.Tables()
	out := make([]TableInfo, 0, len(names))
	for _, name := range names {
		et, err := db.eng.Table(name)
		if err != nil {
			continue // dropped between listing and lookup
		}
		t := &Table{t: et}
		rows, err := et.NumRecords()
		if err != nil {
			rows = -1 // catalog stays usable when a count hits an I/O error
		}
		out = append(out, TableInfo{
			Name:        et.Name,
			Columns:     t.Columns(),
			Rows:        rows,
			Pages:       et.Heap.NumPages(),
			Buckets:     et.Heap.NumBuckets(),
			BucketPages: et.BucketPages,
			SMAs:        t.SMAs(),
		})
	}
	return out
}

// PoolStats returns buffer pool activity counters summed across every
// table's pool: the database-wide I/O picture. The counters are
// cumulative since Open.
func (db *DB) PoolStats() PoolStats {
	s := db.eng.PoolStats()
	return PoolStats{
		Hits:         s.Hits,
		Misses:       s.Misses,
		Evictions:    s.Evictions,
		Prefetched:   s.Prefetched,
		PrefetchHits: s.PrefetchHits,
		Overflows:    s.Overflows,
	}
}

// RecoveryStats reports what crash recovery did when the database was
// opened: whether it ran at all, how many committed statements and
// operations were replayed from the redo log, page images restored,
// trailing garbage bytes discarded, uncommitted pages truncated, and
// SMAs rebuilt. The zero value means the previous shutdown was clean.
type RecoveryStats = engine.RecoveryStats

// WALStats is a point-in-time snapshot of redo-log activity: commits,
// fsyncs, group-commit waits shared with another statement's fsync,
// records and bytes appended, checkpoints, and the current file size.
type WALStats = wal.Stats

// RecoveryStats reports what recovery did when this database was opened.
func (db *DB) RecoveryStats() RecoveryStats { return db.eng.RecoveryStats() }

// WALStats snapshots the redo log's activity counters.
func (db *DB) WALStats() WALStats { return db.eng.WALStats() }

// Sync forces every statement committed so far onto stable storage,
// regardless of the sync policy — the manual durability point for
// SyncOSOnly and SyncEvery databases.
func (db *DB) Sync() error { return db.eng.Sync() }

// Crash abandons the database without checkpointing or marking the
// directory clean, simulating a process kill: buffered redo is flushed,
// files close, and the next Open replays the log. It exists for
// crash-recovery tests and is disarmed unless the database was opened
// with WithUnsafeCrash; production code should call Close.
func (db *DB) Crash() error { return db.eng.Crash() }

// ErrDegraded marks a database that detected page corruption and fell
// back to read-only operation; errors.Is(db.Degraded(), ErrDegraded)
// and errors.Is on rejected writes both match it.
var ErrDegraded = engine.ErrDegraded

// ErrStatementPanic marks a statement that panicked inside the engine
// and was contained at the statement boundary.
var ErrStatementPanic = engine.ErrStatementPanic

// ScrubReport summarizes one verification pass over the database.
type ScrubReport = engine.ScrubReport

// CorruptPage identifies one quarantined page.
type CorruptPage = engine.CorruptPage

// IsCorrupt reports whether err (or anything it wraps) is a page
// checksum failure — the typed error a query returns when it needed a
// quarantined page.
func IsCorrupt(err error) bool { return storage.IsCorrupt(err) }

// Scrub runs one verification pass now: every heap page checksum is
// verified and every SMA file reloaded. Corrupt pages are quarantined
// and degrade the database; the report lists everything found.
func (db *DB) Scrub(ctx context.Context) (*ScrubReport, error) { return db.eng.Scrub(ctx) }

// Degraded returns nil on a healthy database, or an error wrapping
// ErrDegraded once page corruption has been detected. A degraded
// database rejects writes and keeps answering every read that can avoid
// the quarantined pages (SMA grades prove when a skipped page cannot
// affect a result).
func (db *DB) Degraded() error { return db.eng.Degraded() }

// CorruptPages lists every quarantined page in detection order.
func (db *DB) CorruptPages() []CorruptPage { return db.eng.CorruptPages() }

// LastScrub returns the most recent scrub report — from Scrub, the
// background scrubber, or WithVerifyOnOpen — or nil if none ran yet.
func (db *DB) LastScrub() *ScrubReport { return db.eng.LastScrub() }

// Table returns a handle for an existing table.
func (db *DB) Table(name string) (*Table, error) {
	t, err := db.eng.Table(name)
	if err != nil {
		return nil, err
	}
	return &Table{t: t}, nil
}

// CreateTable creates a new table and persists the catalog. The SQL
// equivalent is ExecContext with a "create table" statement.
func (db *DB) CreateTable(name string, cols []Column) (*Table, error) {
	tcols, err := toTupleColumns(cols)
	if err != nil {
		return nil, err
	}
	t, err := db.eng.CreateTable(name, tcols)
	if err != nil {
		return nil, err
	}
	return &Table{t: t}, nil
}

// QueryContext parses, plans, and begins executing a SELECT, returning a
// streaming cursor over typed values. The context is threaded into the
// scan operators and checked on every bucket/page: cancelling it aborts
// the query mid-flight with context.Canceled (or DeadlineExceeded); under
// parallel execution the first failing worker cancels its siblings the
// same way. The caller must Close the returned Rows to release the read
// lock.
func (db *DB) QueryContext(ctx context.Context, query string, opts ...QueryOption) (*Rows, error) {
	var cfg queryConfig
	for _, o := range opts {
		o(&cfg)
	}
	var eopts []engine.QueryOption
	if cfg.dop != 0 {
		eopts = append(eopts, engine.WithDOP(cfg.dop))
	}
	if cfg.batch != nil {
		eopts = append(eopts, engine.WithBatchSize(*cfg.batch))
	}
	if cfg.trace {
		eopts = append(eopts, engine.WithTrace(true))
	}
	cur, err := db.eng.QueryContext(ctx, query, eopts...)
	if err != nil {
		return nil, err
	}
	return &Rows{cur: cur, cols: cur.Columns()}, nil
}

// Query is QueryContext with a background context.
func (db *DB) Query(query string, opts ...QueryOption) (*Rows, error) {
	return db.QueryContext(context.Background(), query, opts...)
}

// ExecContext runs a DDL or DML statement through the unified SQL
// entrypoint: "define sma", "drop sma <name> on <table>", "create table",
// "insert into <table> [(cols)] values (...), (...)", "update <table> set
// col = expr [, ...] [where ...]", and "delete from <table> [where ...]".
// DML maintains every SMA of the table incrementally (appends and
// sum/count updates in O(1) per SMA-file, boundary-moving min/max updates
// and deletes with at most one bucket rescan) and holds the write lock for
// the whole statement, so concurrent queries — parallel ones included —
// never observe a half-applied statement.
func (db *DB) ExecContext(ctx context.Context, stmt string) (*ExecResult, error) {
	res, err := db.eng.ExecContext(ctx, stmt)
	if err != nil {
		return nil, err
	}
	out := &ExecResult{
		Kind: res.Kind, Table: res.Table, RowsAffected: res.RowsAffected,
		WALBytes: res.WALBytes, WALSyncs: res.WALSyncs,
	}
	if res.SMA != nil {
		out.SMAName = res.SMA.Def.Name
		out.SMABuckets = res.SMA.NumBuckets
		out.SMAFiles = res.SMA.NumFiles()
		out.SMAPages = res.SMA.PagesUsed()
	}
	return out, nil
}

// Exec is ExecContext with a background context.
func (db *DB) Exec(stmt string) (*ExecResult, error) {
	return db.ExecContext(context.Background(), stmt)
}

// ExecResult reports the effect of a non-SELECT statement.
type ExecResult struct {
	// Kind names the executed statement: "define sma", "drop sma",
	// "create table", "insert", "update", or "delete".
	Kind  string
	Table string
	// RowsAffected is the number of tuples inserted, updated, or removed
	// by a DML statement. An update or delete whose predicate matches no
	// tuple reports 0 without error.
	RowsAffected int64
	// SMAName, SMABuckets, SMAFiles, and SMAPages describe the SMA built
	// by a "define sma" statement.
	SMAName    string
	SMABuckets int
	SMAFiles   int
	SMAPages   int64
	// WALBytes and WALSyncs are the redo-log bytes appended and fsyncs
	// observed while the statement ran (0 when observability is off).
	WALBytes int64
	WALSyncs int64
}
