// Package sma is the public face of the library: an embedded warehouse
// engine built on Small Materialized Aggregates (Moerkotte, VLDB '98).
// It owns an on-disk catalog, tables, and SMAs, and runs SQL through an
// SMA-aware planner that answers selective aggregate queries mostly from
// the SMA-files instead of the relation's pages.
//
// Typical use:
//
//	db, _ := sma.Open(dir)
//	defer db.Close()
//	db.Exec(`create table SALES (SALE_DATE date, REGION char(1), AMOUNT float64)`)
//	tbl, _ := db.Table("SALES")
//	tbl.Append(sma.DateOf(2020, 1, 2), "N", 129.95)
//	db.Exec(`define sma amt select sum(AMOUNT) from SALES group by REGION`)
//	rows, _ := db.QueryContext(ctx, `select REGION, sum(AMOUNT) as REV from SALES
//	    where SALE_DATE <= date '2020-03-31' group by REGION`)
//	defer rows.Close()
//	for rows.Next() {
//	    var region string
//	    var rev float64
//	    rows.Scan(&region, &rev)
//	}
//
// Queries stream: QueryContext returns a cursor that pulls from the
// exec-layer iterator pipeline one row at a time, carrying typed values
// (int64, float64, string, Date) rather than rendered strings. The
// database read lock is held while a cursor is open and released on Close
// (or when the stream ends), so hold cursors briefly and never run DDL on
// the same goroutine before closing an open cursor. Cancelling the
// query's context aborts scans at the next bucket or page boundary.
package sma

import (
	"context"
	"time"

	"sma/internal/engine"
)

// Option configures an engine instance; pass options to Open.
type Option func(*engine.Options)

// WithPoolPages sets the buffer pool capacity per table in pages
// (default 2048 pages = 8 MB, the paper's intertransaction buffer size).
func WithPoolPages(n int) Option {
	return func(o *engine.Options) { o.PoolPages = n }
}

// WithBucketPages sets the SMA bucket granularity for new tables in pages
// (default 1 page, the paper's default).
func WithBucketPages(n int) Option {
	return func(o *engine.Options) { o.BucketPages = n }
}

// WithReadLatency simulates per-page disk read latency; useful for
// benchmarks that reproduce the paper's disk model.
func WithReadLatency(d time.Duration) Option {
	return func(o *engine.Options) { o.ReadLatency = d }
}

// WithBatchSize sets the tuples-per-batch target of the vectorized read
// path (default 1024 tuples). The batched operators decode each heap page
// into a reusable batch once, evaluate the predicate as a tight loop
// producing a selection vector, and fold aggregates per batch instead of
// per tuple. Passing a negative n disables batching: plans fall back to
// the legacy row-at-a-time iterators (the pre-batch execution engine,
// kept as the projection-streaming substrate and for A/B comparison).
func WithBatchSize(n int) Option {
	return func(o *engine.Options) { o.BatchSize = n }
}

// WithPrefetchWindow sets the number of pages of SMA-guided asynchronous
// readahead per scan (default 16). Because bucket grading computes the
// exact surviving page set before the first page access, the prefetcher
// never reads a page the query will skip; it stays at most n pages ahead
// of the cursor and is derated per worker under parallelism. Passing a
// negative n disables prefetch.
func WithPrefetchWindow(n int) Option {
	return func(o *engine.Options) { o.PrefetchWindow = n }
}

// WithParallelism sets the default degree of intra-query parallelism for
// aggregation queries: buckets are pre-graded with the selection SMAs,
// disqualified buckets are dropped, and the survivors are split into n
// page-balanced partitions, each executed by its own worker; the partial
// aggregates merge into one deterministic, sorted result. 0 or 1 executes
// serially (the default); runtime.NumCPU() is a good value for CPU-bound
// workloads. Individual queries can override it with WithQueryParallelism.
func WithParallelism(n int) Option {
	return func(o *engine.Options) { o.Parallelism = n }
}

// QueryOption adjusts the execution of a single query; pass options to
// QueryContext.
type QueryOption func(*queryConfig)

// queryConfig collects per-query overrides.
type queryConfig struct {
	dop   int
	batch *int
}

// WithQueryParallelism overrides the database's degree of parallelism for
// one query: 1 forces serial execution, n > 1 requests n partition workers
// (capped by the work the plan dispatches), 0 keeps the database default.
func WithQueryParallelism(n int) QueryOption {
	return func(c *queryConfig) { c.dop = n }
}

// WithQueryBatchSize overrides the database's tuples-per-batch target for
// one query: 0 batches at the default size, a negative n runs the query on
// the legacy row-at-a-time iterators. Results are identical either way;
// the knob exists for A/B comparison and for serving layers that let
// clients choose per request.
func WithQueryBatchSize(n int) QueryOption {
	return func(c *queryConfig) { c.batch = &n }
}

// DB is an embedded warehouse instance rooted at a directory. A DB is safe
// for concurrent use: queries hold a read lock while their cursor is open,
// DDL and data modification take the write lock.
type DB struct {
	eng *engine.DB
}

// Open opens (or initializes) a database directory.
func Open(dir string, opts ...Option) (*DB, error) {
	var o engine.Options
	for _, opt := range opts {
		opt(&o)
	}
	eng, err := engine.Open(dir, o)
	if err != nil {
		return nil, err
	}
	return &DB{eng: eng}, nil
}

// Dir returns the database directory.
func (db *DB) Dir() string { return db.eng.Dir() }

// Close flushes and closes every table, persisting delete vectors. Close
// is idempotent: a second call is a no-op. Close blocks until open cursors
// release their read locks.
func (db *DB) Close() error { return db.eng.Close() }

// TableNames lists table names in sorted order.
func (db *DB) TableNames() []string { return db.eng.Tables() }

// Tables returns a catalog snapshot: every table in name order with its
// schema, live row count, heap size, and defined SMAs. It is the
// inspection surface CLIs and the query server's /status endpoint report
// from, so tools never reach into engine internals.
func (db *DB) Tables() []TableInfo {
	names := db.eng.Tables()
	out := make([]TableInfo, 0, len(names))
	for _, name := range names {
		et, err := db.eng.Table(name)
		if err != nil {
			continue // dropped between listing and lookup
		}
		t := &Table{t: et}
		rows, err := et.NumRecords()
		if err != nil {
			rows = -1 // catalog stays usable when a count hits an I/O error
		}
		out = append(out, TableInfo{
			Name:        et.Name,
			Columns:     t.Columns(),
			Rows:        rows,
			Pages:       et.Heap.NumPages(),
			Buckets:     et.Heap.NumBuckets(),
			BucketPages: et.BucketPages,
			SMAs:        t.SMAs(),
		})
	}
	return out
}

// PoolStats returns buffer pool activity counters summed across every
// table's pool: the database-wide I/O picture. The counters are
// cumulative since Open.
func (db *DB) PoolStats() PoolStats {
	s := db.eng.PoolStats()
	return PoolStats{
		Hits:         s.Hits,
		Misses:       s.Misses,
		Evictions:    s.Evictions,
		Prefetched:   s.Prefetched,
		PrefetchHits: s.PrefetchHits,
	}
}

// Table returns a handle for an existing table.
func (db *DB) Table(name string) (*Table, error) {
	t, err := db.eng.Table(name)
	if err != nil {
		return nil, err
	}
	return &Table{t: t}, nil
}

// CreateTable creates a new table and persists the catalog. The SQL
// equivalent is ExecContext with a "create table" statement.
func (db *DB) CreateTable(name string, cols []Column) (*Table, error) {
	tcols, err := toTupleColumns(cols)
	if err != nil {
		return nil, err
	}
	t, err := db.eng.CreateTable(name, tcols)
	if err != nil {
		return nil, err
	}
	return &Table{t: t}, nil
}

// QueryContext parses, plans, and begins executing a SELECT, returning a
// streaming cursor over typed values. The context is threaded into the
// scan operators and checked on every bucket/page: cancelling it aborts
// the query mid-flight with context.Canceled (or DeadlineExceeded); under
// parallel execution the first failing worker cancels its siblings the
// same way. The caller must Close the returned Rows to release the read
// lock.
func (db *DB) QueryContext(ctx context.Context, query string, opts ...QueryOption) (*Rows, error) {
	var cfg queryConfig
	for _, o := range opts {
		o(&cfg)
	}
	var eopts []engine.QueryOption
	if cfg.dop != 0 {
		eopts = append(eopts, engine.WithDOP(cfg.dop))
	}
	if cfg.batch != nil {
		eopts = append(eopts, engine.WithBatchSize(*cfg.batch))
	}
	cur, err := db.eng.QueryContext(ctx, query, eopts...)
	if err != nil {
		return nil, err
	}
	return &Rows{cur: cur, cols: cur.Columns()}, nil
}

// Query is QueryContext with a background context.
func (db *DB) Query(query string, opts ...QueryOption) (*Rows, error) {
	return db.QueryContext(context.Background(), query, opts...)
}

// ExecContext runs a DDL or DML statement through the unified SQL
// entrypoint: "define sma", "drop sma <name> on <table>", "create table",
// "insert into <table> [(cols)] values (...), (...)", "update <table> set
// col = expr [, ...] [where ...]", and "delete from <table> [where ...]".
// DML maintains every SMA of the table incrementally (appends and
// sum/count updates in O(1) per SMA-file, boundary-moving min/max updates
// and deletes with at most one bucket rescan) and holds the write lock for
// the whole statement, so concurrent queries — parallel ones included —
// never observe a half-applied statement.
func (db *DB) ExecContext(ctx context.Context, stmt string) (*ExecResult, error) {
	res, err := db.eng.ExecContext(ctx, stmt)
	if err != nil {
		return nil, err
	}
	out := &ExecResult{Kind: res.Kind, Table: res.Table, RowsAffected: res.RowsAffected}
	if res.SMA != nil {
		out.SMAName = res.SMA.Def.Name
		out.SMABuckets = res.SMA.NumBuckets
		out.SMAFiles = res.SMA.NumFiles()
		out.SMAPages = res.SMA.PagesUsed()
	}
	return out, nil
}

// Exec is ExecContext with a background context.
func (db *DB) Exec(stmt string) (*ExecResult, error) {
	return db.ExecContext(context.Background(), stmt)
}

// ExecResult reports the effect of a non-SELECT statement.
type ExecResult struct {
	// Kind names the executed statement: "define sma", "drop sma",
	// "create table", "insert", "update", or "delete".
	Kind  string
	Table string
	// RowsAffected is the number of tuples inserted, updated, or removed
	// by a DML statement. An update or delete whose predicate matches no
	// tuple reports 0 without error.
	RowsAffected int64
	// SMAName, SMABuckets, SMAFiles, and SMAPages describe the SMA built
	// by a "define sma" statement.
	SMAName    string
	SMABuckets int
	SMAFiles   int
	SMAPages   int64
}
