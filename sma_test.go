package sma

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"sma/internal/experiments"
	"sma/internal/tpcd"
	"sma/internal/tuple"
)

// query1 is TPC-D Query 1 (Fig. 3 of the paper, delta = 90).
const query1 = `SELECT L_RETURNFLAG, L_LINESTATUS,
 SUM(L_QUANTITY) AS SUM_QTY, SUM(L_EXTENDEDPRICE) AS SUM_BASE_PRICE,
 SUM(L_EXTENDEDPRICE*(1-L_DISCOUNT)) AS SUM_DISC_PRICE,
 SUM(L_EXTENDEDPRICE*(1-L_DISCOUNT)*(1+L_TAX)) AS SUM_CHARGE,
 AVG(L_QUANTITY) AS AVG_QTY, AVG(L_EXTENDEDPRICE) AS AVG_PRICE,
 AVG(L_DISCOUNT) AS AVG_DISC, COUNT(*) AS COUNT_ORDER
 FROM LINEITEM
 WHERE L_SHIPDATE <= DATE '1998-12-01' - INTERVAL '90' DAY
 GROUP BY L_RETURNFLAG, L_LINESTATUS
 ORDER BY L_RETURNFLAG, L_LINESTATUS`

// openLineItem loads a LINEITEM table through the internal engine (the
// fast bulk path) so the tests exercise the public query surface on real
// TPC-D data.
func openLineItem(t testing.TB, sf float64, order tpcd.Order) *DB {
	t.Helper()
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	li, err := db.eng.CreateTable("LINEITEM", tpcd.LineItemSchema().Columns())
	if err != nil {
		t.Fatal(err)
	}
	items := tpcd.GenLineItems(tpcd.Config{ScaleFactor: sf, Seed: 42, Order: order})
	tp := tuple.NewTuple(li.Schema)
	for i := range items {
		items[i].FillTuple(tp)
		if _, err := li.Append(tp); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// defineQ1SMAs builds the paper's eight Query-1 SMAs.
func defineQ1SMAs(t testing.TB, db *DB) {
	t.Helper()
	for _, def := range experiments.Q1SMADefs() {
		if _, err := db.eng.DefineSMADef(def); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStreamingMatchesMaterialized: the public streaming cursor renders
// byte-identical results to the engine's materialized Query path on TPC-D
// Query 1, on both the SMA_GAggr plan and the full-scan baseline.
func TestStreamingMatchesMaterialized(t *testing.T) {
	db := openLineItem(t, 0.002, tpcd.OrderSorted)
	defineQ1SMAs(t, db)

	check := func(wantStrategy string) {
		t.Helper()
		ref, err := db.eng.Query(query1)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := db.QueryContext(context.Background(), query1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Collect(rows)
		if err != nil {
			t.Fatal(err)
		}
		if got.Strategy != wantStrategy {
			t.Errorf("strategy = %s, want %s", got.Strategy, wantStrategy)
		}
		if len(got.Columns) != len(ref.Columns) {
			t.Fatalf("columns = %v, want %v", got.Columns, ref.Columns)
		}
		for i := range ref.Columns {
			if got.Columns[i] != ref.Columns[i] {
				t.Errorf("column %d = %q, want %q", i, got.Columns[i], ref.Columns[i])
			}
		}
		if len(got.Rows) != len(ref.Rows) {
			t.Fatalf("%d rows, want %d", len(got.Rows), len(ref.Rows))
		}
		for i := range ref.Rows {
			for j := range ref.Rows[i] {
				if got.Rows[i][j] != ref.Rows[i][j] {
					t.Errorf("row %d col %d: streaming %q != materialized %q",
						i, j, got.Rows[i][j], ref.Rows[i][j])
				}
			}
		}
	}
	check("SMA_GAggr")
	// Drop the selection SMAs: the planner falls back to the full scan and
	// the two paths must still agree.
	for _, name := range []string{"min", "max"} {
		if _, err := db.Exec("drop sma " + name + " on LINEITEM"); err != nil {
			t.Fatal(err)
		}
	}
	check("FullScan+GAggr")
}

// TestContextCancelMidScan: cancelling the context while a streaming
// projection is mid-flight terminates the cursor with context.Canceled.
func TestContextCancelMidScan(t *testing.T) {
	db := openLineItem(t, 0.005, tpcd.OrderSorted)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows, err := db.QueryContext(ctx, "select L_ORDERKEY, L_SHIPDATE from LINEITEM")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	seen := 0
	for rows.Next() {
		var key int64
		var ship Date
		if err := rows.Scan(&key, &ship); err != nil {
			t.Fatal(err)
		}
		seen++
		if seen == 3 {
			cancel() // the scan checks the context at the next page boundary
		}
	}
	if !errors.Is(rows.Err(), context.Canceled) {
		t.Fatalf("Err = %v after %d rows, want context.Canceled", rows.Err(), seen)
	}
	// The table holds far more rows than one page; the scan must have
	// stopped early.
	tbl, err := db.Table("LINEITEM")
	if err != nil {
		t.Fatal(err)
	}
	if int64(seen) >= tbl.Pages()*int64(tbl.BucketPages())*100 {
		t.Errorf("scan did not stop early: %d rows", seen)
	}
	// The read lock must have been released: DDL acquires the write lock.
	done := make(chan error, 1)
	go func() {
		_, err := db.Exec("define sma mn select min(L_SHIPDATE) from LINEITEM")
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("DDL blocked after cancelled cursor terminated; read lock leaked")
	}
}

// TestQueryContextCancelledAggregation: a cancelled context aborts an
// aggregation query inside QueryContext (the pipeline-breaking operators
// run during open) and reports the context error.
func TestQueryContextCancelledAggregation(t *testing.T) {
	db := openLineItem(t, 0.002, tpcd.OrderSorted)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := db.QueryContext(ctx, "select count(*) from LINEITEM")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryContext err = %v, want context.Canceled", err)
	}
}

// TestExecDDLRoundTrip drives the unified SQL entrypoint end to end:
// create table, define sma, query, delete, drop sma.
func TestExecDDLRoundTrip(t *testing.T) {
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	res, err := db.Exec("create table SALES (SALE_DATE date, REGION char(1), AMOUNT float64)")
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "create table" || res.Table != "SALES" {
		t.Errorf("create result = %+v", res)
	}
	tbl, err := db.Table("SALES")
	if err != nil {
		t.Fatal(err)
	}
	regions := []string{"N", "S", "E", "W"}
	for day := 0; day < 200; day++ {
		for i := 0; i < 8; i++ {
			_, err := tbl.Append(DateOf(2023, 1, 1).AddDays(day), regions[(day+i)%4], float64(10+i))
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, ddl := range []string{
		"define sma dmin select min(SALE_DATE) from SALES",
		"define sma dmax select max(SALE_DATE) from SALES",
		"define sma cnt select count(*) from SALES group by REGION",
	} {
		res, err := db.Exec(ddl)
		if err != nil {
			t.Fatal(err)
		}
		if res.Kind != "define sma" || res.SMAName == "" || res.SMABuckets == 0 {
			t.Errorf("define result = %+v", res)
		}
	}

	count := func() int64 {
		rows, err := db.Query("select count(*) as N from SALES")
		if err != nil {
			t.Fatal(err)
		}
		defer rows.Close()
		if !rows.Next() {
			t.Fatal("no count row")
		}
		var n int64
		if err := rows.Scan(&n); err != nil {
			t.Fatal(err)
		}
		return n
	}
	before := count()
	if before != 1600 {
		t.Fatalf("count = %d, want 1600", before)
	}

	del, err := db.Exec("delete from SALES where SALE_DATE <= date '2023-01-31'")
	if err != nil {
		t.Fatal(err)
	}
	if del.Kind != "delete" || del.RowsAffected != 31*8 {
		t.Errorf("delete result = %+v, want %d rows", del, 31*8)
	}
	if got := count(); got != before-del.RowsAffected {
		t.Errorf("count after delete = %d, want %d", got, before-del.RowsAffected)
	}
	// The SMAs stayed consistent through the delete.
	for _, s := range tbl.SMAs() {
		if err := tbl.VerifySMA(s.Name); err != nil {
			t.Errorf("verify %s: %v", s.Name, err)
		}
	}

	if _, err := db.Exec("drop sma cnt on SALES"); err != nil {
		t.Fatal(err)
	}
	if len(tbl.SMAs()) != 2 {
		t.Errorf("SMAs after drop = %v", tbl.SMAs())
	}
	if _, err := db.Exec("drop sma nope on SALES"); err == nil {
		t.Errorf("dropping an unknown SMA should fail")
	}
	if _, err := db.Exec("select count(*) from SALES"); err == nil {
		t.Errorf("Exec on a SELECT should fail (use QueryContext)")
	}
}

// TestAppendValuesMatchesFillTuple: loading rows through the public typed
// Append (tpcd.Values, the dbgen path) stores byte-identical data to the
// internal FillTuple bulk path.
func TestAppendValuesMatchesFillTuple(t *testing.T) {
	ref := openLineItem(t, 0.0005, tpcd.OrderSorted) // FillTuple path
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(tpcd.LineItemDDL); err != nil {
		t.Fatal(err)
	}
	tbl, err := db.Table("LINEITEM")
	if err != nil {
		t.Fatal(err)
	}
	items := tpcd.GenLineItems(tpcd.Config{ScaleFactor: 0.0005, Seed: 42, Order: tpcd.OrderSorted})
	for i := range items {
		if _, err := tbl.Append(items[i].Values()...); err != nil {
			t.Fatal(err)
		}
	}
	const q = "select * from LINEITEM limit 40"
	for _, pair := range [][2]*DB{{ref, db}} {
		a, err := pair[0].Query(q)
		if err != nil {
			t.Fatal(err)
		}
		resA, err := Collect(a)
		if err != nil {
			t.Fatal(err)
		}
		b, err := pair[1].Query(q)
		if err != nil {
			t.Fatal(err)
		}
		resB, err := Collect(b)
		if err != nil {
			t.Fatal(err)
		}
		if len(resA.Rows) != len(resB.Rows) {
			t.Fatalf("row counts differ: %d vs %d", len(resA.Rows), len(resB.Rows))
		}
		for i := range resA.Rows {
			for j := range resA.Rows[i] {
				if resA.Rows[i][j] != resB.Rows[i][j] {
					t.Errorf("row %d col %d: FillTuple %q != Values %q",
						i, j, resA.Rows[i][j], resB.Rows[i][j])
				}
			}
		}
	}
}

// TestProjectionStreaming: select * streams typed tuples with LIMIT.
func TestProjectionStreaming(t *testing.T) {
	db := openLineItem(t, 0.001, tpcd.OrderSorted)
	rows, err := db.Query("select * from LINEITEM where L_SHIPDATE <= date '1995-01-01' limit 25")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if got := len(rows.Columns()); got != 16 {
		t.Fatalf("select * columns = %d, want 16", got)
	}
	cutoff := MustParseDate("1995-01-01")
	n := 0
	for rows.Next() {
		vals, err := rows.Values()
		if err != nil {
			t.Fatal(err)
		}
		ship, ok := vals[10].(Date)
		if !ok {
			t.Fatalf("L_SHIPDATE value is %T, want Date", vals[10])
		}
		if ship > cutoff {
			t.Errorf("predicate violated: %s", ship)
		}
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 25 {
		t.Errorf("limit 25 returned %d rows", n)
	}
}

// TestScanTypedDestinations: Scan converts into the documented
// destination types.
func TestScanTypedDestinations(t *testing.T) {
	db := openLineItem(t, 0.001, tpcd.OrderSorted)
	rows, err := db.Query("select L_ORDERKEY, L_QUANTITY, L_RETURNFLAG, L_SHIPDATE from LINEITEM limit 1")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatal("no rows")
	}
	var key int64
	var qty float64
	var flag string
	var ship time.Time
	if err := rows.Scan(&key, &qty, &flag, &ship); err != nil {
		t.Fatal(err)
	}
	if key <= 0 || qty <= 0 || flag == "" || ship.IsZero() {
		t.Errorf("scanned zero values: %d %v %q %v", key, qty, flag, ship)
	}
	types := rows.ColumnTypes()
	want := []ColumnType{TypeInt64, TypeFloat64, TypeChar, TypeDate}
	for i := range want {
		if types[i] != want[i] {
			t.Errorf("column type %d = %v, want %v", i, types[i], want[i])
		}
	}
}

// TestCloseIdempotent: closing twice is a no-op, and the engine rejects
// queries after close.
func TestCloseIdempotent(t *testing.T) {
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("create table T (A date, B float64)"); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
	if _, err := db.Query("select count(*) from T"); err == nil {
		t.Errorf("query after Close should fail")
	}
}

// TestCatalogSnapshot covers the public inspection surface a serving
// layer reports from: Tables() with schema/rows/SMAs, TableNames, and the
// merged PoolStats.
func TestCatalogSnapshot(t *testing.T) {
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec := func(sql string) {
		t.Helper()
		if _, err := db.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustExec("create table B (N int64)")
	mustExec("create table A (D date, K char(3), V float64)")
	mustExec("insert into A values (date '2024-01-01', 'x', 1), (date '2024-01-02', 'y', 2), (date '2024-01-03', 'z', 3)")
	mustExec("delete from A where D = date '2024-01-02'")
	mustExec("define sma m select min(D) from A")

	if got := db.TableNames(); fmt.Sprint(got) != "[A B]" {
		t.Fatalf("TableNames: %v", got)
	}
	infos := db.Tables()
	if len(infos) != 2 || infos[0].Name != "A" || infos[1].Name != "B" {
		t.Fatalf("Tables: %+v", infos)
	}
	a := infos[0]
	if a.Rows != 2 {
		t.Fatalf("A rows %d, want 2 (delete excluded)", a.Rows)
	}
	if len(a.Columns) != 3 || a.Columns[1].Type != TypeChar || a.Columns[1].Len != 3 {
		t.Fatalf("A columns: %+v", a.Columns)
	}
	if a.Pages < 1 || a.Buckets < 1 || a.BucketPages < 1 {
		t.Fatalf("A sizes: %+v", a)
	}
	if len(a.SMAs) != 1 || a.SMAs[0].Name != "m" {
		t.Fatalf("A SMAs: %+v", a.SMAs)
	}
	if len(infos[1].SMAs) != 0 || infos[1].Rows != 0 {
		t.Fatalf("B: %+v", infos[1])
	}

	rows, err := db.Query("select count(*) from A")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(rows); err != nil {
		t.Fatal(err)
	}
	if ps := db.PoolStats(); ps.Hits+ps.Misses == 0 {
		t.Fatalf("PoolStats saw no traffic: %+v", ps)
	}
}

// TestQueryBatchSizeOption checks the per-query batch override returns
// identical bytes in row mode, tiny-batch mode, and the default.
func TestQueryBatchSizeOption(t *testing.T) {
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec("create table T (K char(1), V float64)"); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Table("T")
	for i := 0; i < 5000; i++ {
		if _, err := tbl.Append(string(rune('A'+i%4)), float64(i%97)+0.5); err != nil {
			t.Fatal(err)
		}
	}
	q := "select K, sum(V) as S, count(*) as C from T group by K order by K"
	render := func(opts ...QueryOption) string {
		t.Helper()
		rows, err := db.Query(q, opts...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Collect(rows)
		if err != nil {
			t.Fatal(err)
		}
		return res.String()
	}
	base := render()
	if got := render(WithQueryBatchSize(-1)); got != base {
		t.Fatalf("row mode differs:\n%s\nvs\n%s", got, base)
	}
	if got := render(WithQueryBatchSize(7)); got != base {
		t.Fatalf("batch=7 differs:\n%s\nvs\n%s", got, base)
	}
}
