package sma

import (
	"fmt"
	"math"
	"time"

	"sma/internal/engine"
	"sma/internal/storage"
	"sma/internal/tuple"
)

// Table is a handle on a stored relation. Appends, updates, and deletes
// maintain every SMA of the table in place, the paper's "cheap to
// maintain" property.
type Table struct {
	t *engine.Table
}

// Name returns the (upper-cased) table name.
func (t *Table) Name() string { return t.t.Name }

// Columns returns the table schema.
func (t *Table) Columns() []Column {
	cols := t.t.Schema.Columns()
	out := make([]Column, len(cols))
	for i, c := range cols {
		out[i] = Column{Name: c.Name, Type: fromTupleType(c.Type), Len: c.Len}
	}
	return out
}

// Pages returns the number of heap pages.
func (t *Table) Pages() int64 { return t.t.Heap.NumPages() }

// Buckets returns the number of SMA buckets.
func (t *Table) Buckets() int { return t.t.Heap.NumBuckets() }

// BucketPages returns the bucket granularity in pages.
func (t *Table) BucketPages() int { return t.t.BucketPages }

// Append adds one row (one value per column, in schema order) and
// maintains every SMA of the table. Accepted value types per column:
//
//	int32:   int, int32, int64
//	int64:   int, int32, int64
//	float64: float64, float32, int, int64
//	date:    Date, time.Time, string ("YYYY-MM-DD")
//	char:    string
func (t *Table) Append(vals ...any) (RID, error) {
	tp, err := t.newTuple(vals)
	if err != nil {
		return RID{}, err
	}
	rid, err := t.t.Append(tp)
	return RID{Page: int64(rid.Page), Slot: rid.Slot}, err
}

// Update overwrites the record at rid with new values and maintains every
// SMA (at most one additional page access per updated tuple, §2.2).
func (t *Table) Update(rid RID, vals ...any) error {
	tp, err := t.newTuple(vals)
	if err != nil {
		return err
	}
	return t.t.Update(storage.RID{Page: storage.PageID(rid.Page), Slot: rid.Slot}, tp)
}

// Delete removes the record at rid via the delete vector and maintains
// every SMA. The SQL equivalent is "delete from <table> where ...".
func (t *Table) Delete(rid RID) error {
	return t.t.Delete(storage.RID{Page: storage.PageID(rid.Page), Slot: rid.Slot})
}

// Get reads the record at rid as typed values (int64, float64, string,
// Date per column).
func (t *Table) Get(rid RID) ([]any, error) {
	tp, err := t.t.Get(storage.RID{Page: storage.PageID(rid.Page), Slot: rid.Slot})
	if err != nil {
		return nil, err
	}
	out := make([]any, tp.Schema.NumColumns())
	for i := range out {
		switch tp.Schema.Column(i).Type {
		case tuple.TChar:
			out[i] = tp.Char(i)
		case tuple.TDate:
			out[i] = Date(tp.Int32(i))
		case tuple.TInt32:
			out[i] = int64(tp.Int32(i))
		case tuple.TInt64:
			out[i] = tp.Int64(i)
		default:
			out[i] = tp.Float64(i)
		}
	}
	return out, nil
}

// TableInfo is a catalog snapshot of one table: name, schema, size, and
// defined SMAs. DB.Tables returns one per table.
type TableInfo struct {
	Name    string
	Columns []Column
	// Rows is the live record count (deleted tuples excluded); -1 when the
	// count failed with an I/O error.
	Rows int64
	// Pages is the heap size in pages (deleted records still occupy their
	// slots until compaction).
	Pages int64
	// Buckets is the number of SMA buckets; BucketPages the bucket
	// granularity in pages.
	Buckets     int
	BucketPages int
	SMAs        []SMAInfo
}

// PoolStats aggregates buffer pool activity across every table's pool.
type PoolStats struct {
	Hits         int64 // page requests satisfied without disk I/O
	Misses       int64 // page requests that required a physical read
	Evictions    int64 // frames written back / recycled
	Prefetched   int64 // physical reads issued by prefetchers
	PrefetchHits int64 // demand fetches that landed on a prefetched frame
	Overflows    int64 // frames allocated past capacity under a statement barrier
}

// Rows returns the table's live record count (deleted tuples excluded).
func (t *Table) Rows() (int64, error) { return t.t.NumRecords() }

// SMAInfo describes one SMA of a table.
type SMAInfo struct {
	Name string
	// SQL is the defining DDL ("define sma ... select ... from ...").
	SQL     string
	Files   int
	Pages   int64
	Buckets int
}

// SMAs lists the table's SMAs in name order.
func (t *Table) SMAs() []SMAInfo {
	smas := t.t.SMAs()
	out := make([]SMAInfo, len(smas))
	for i, s := range smas {
		out[i] = SMAInfo{
			Name: s.Def.Name, SQL: s.Def.String(),
			Files: s.NumFiles(), Pages: s.PagesUsed(), Buckets: s.NumBuckets,
		}
	}
	return out
}

// VerifySMA recomputes the named SMA from the heap and compares it against
// the maintained state, returning an error on any mismatch.
func (t *Table) VerifySMA(name string) error { return t.t.VerifySMA(name) }

// newTuple converts one row of Go values into the table's record layout.
func (t *Table) newTuple(vals []any) (tuple.Tuple, error) {
	s := t.t.Schema
	if len(vals) != s.NumColumns() {
		return tuple.Tuple{}, fmt.Errorf("sma: table %s has %d columns, got %d values",
			t.t.Name, s.NumColumns(), len(vals))
	}
	tp := tuple.NewTuple(s)
	for i, v := range vals {
		if err := setColumn(tp, i, v); err != nil {
			return tuple.Tuple{}, fmt.Errorf("sma: column %s: %w", s.Column(i).Name, err)
		}
	}
	return tp, nil
}

// setColumn writes one Go value into column i of a record.
func setColumn(tp tuple.Tuple, i int, v any) error {
	col := tp.Schema.Column(i)
	switch col.Type {
	case tuple.TChar:
		s, ok := v.(string)
		if !ok {
			return fmt.Errorf("char column needs a string, got %T", v)
		}
		if len(s) > col.Len {
			return fmt.Errorf("value %q exceeds char(%d)", s, col.Len)
		}
		tp.SetChar(i, s)
	case tuple.TDate:
		switch d := v.(type) {
		case Date:
			tp.SetInt32(i, int32(d))
		case time.Time:
			tp.SetInt32(i, tuple.DateFromYMD(d.Year(), int(d.Month()), d.Day()))
		case string:
			parsed, err := tuple.ParseDate(d)
			if err != nil {
				return err
			}
			tp.SetInt32(i, parsed)
		default:
			return fmt.Errorf("date column needs a Date, time.Time, or string, got %T", v)
		}
	case tuple.TInt32:
		n, err := asInt64(v)
		if err != nil {
			return err
		}
		if n < math.MinInt32 || n > math.MaxInt32 {
			return fmt.Errorf("value %d overflows int32", n)
		}
		tp.SetInt32(i, int32(n))
	case tuple.TInt64:
		n, err := asInt64(v)
		if err != nil {
			return err
		}
		tp.SetInt64(i, n)
	case tuple.TFloat64:
		switch f := v.(type) {
		case float64:
			tp.SetFloat64(i, f)
		case float32:
			tp.SetFloat64(i, float64(f))
		default:
			n, err := asInt64(v)
			if err != nil {
				return fmt.Errorf("float column needs a number, got %T", v)
			}
			tp.SetFloat64(i, float64(n))
		}
	default:
		return fmt.Errorf("unsupported column type %v", col.Type)
	}
	return nil
}

// asInt64 widens the supported integer types.
func asInt64(v any) (int64, error) {
	switch n := v.(type) {
	case int:
		return int64(n), nil
	case int32:
		return int64(n), nil
	case int64:
		return n, nil
	default:
		return 0, fmt.Errorf("integer column needs an int, got %T", v)
	}
}
