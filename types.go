package sma

import (
	"fmt"
	"time"

	"sma/internal/tuple"
)

// ColumnType enumerates the column types of the engine.
type ColumnType uint8

// Column types.
const (
	// TypeInt32 is a 32-bit signed integer.
	TypeInt32 ColumnType = iota
	// TypeInt64 is a 64-bit signed integer.
	TypeInt64
	// TypeFloat64 is an IEEE-754 double. Aggregate output columns are
	// always TypeFloat64.
	TypeFloat64
	// TypeDate is a calendar date (see Date).
	TypeDate
	// TypeChar is a fixed-width character field, padded with spaces.
	TypeChar
)

// String returns the SQL name of the type, as accepted by "create table".
func (t ColumnType) String() string {
	switch t {
	case TypeInt32:
		return "int32"
	case TypeInt64:
		return "int64"
	case TypeFloat64:
		return "float64"
	case TypeDate:
		return "date"
	case TypeChar:
		return "char"
	default:
		return fmt.Sprintf("ColumnType(%d)", uint8(t))
	}
}

// Column describes one column of a table schema.
type Column struct {
	Name string
	Type ColumnType
	// Len is the character count for TypeChar columns; ignored otherwise.
	Len int
}

// Date is a calendar date stored as days since 1970-01-01, the engine's
// on-disk date representation.
type Date int32

// DateOf builds a Date from a calendar day.
func DateOf(year, month, day int) Date {
	return Date(tuple.DateFromYMD(year, month, day))
}

// ParseDate parses a "YYYY-MM-DD" string.
func ParseDate(s string) (Date, error) {
	d, err := tuple.ParseDate(s)
	return Date(d), err
}

// MustParseDate is ParseDate that panics on malformed input; for constants.
func MustParseDate(s string) Date {
	return Date(tuple.MustParseDate(s))
}

// String renders the date as "YYYY-MM-DD".
func (d Date) String() string { return tuple.FormatDate(int32(d)) }

// Time converts the date to a UTC time.Time at midnight.
func (d Date) Time() time.Time {
	return time.Date(1970, 1, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, int(d))
}

// AddDays returns the date shifted by n days.
func (d Date) AddDays(n int) Date { return d + Date(n) }

// RID identifies a stored record by page and slot; Append returns one and
// Update/Delete/Get address records with it.
type RID struct {
	Page int64
	Slot int
}

// String renders the record id.
func (r RID) String() string { return fmt.Sprintf("(%d,%d)", r.Page, r.Slot) }

// toTupleColumns converts public column specs to the internal schema form.
func toTupleColumns(cols []Column) ([]tuple.Column, error) {
	out := make([]tuple.Column, len(cols))
	for i, c := range cols {
		tc := tuple.Column{Name: c.Name, Len: c.Len}
		switch c.Type {
		case TypeInt32:
			tc.Type = tuple.TInt32
		case TypeInt64:
			tc.Type = tuple.TInt64
		case TypeFloat64:
			tc.Type = tuple.TFloat64
		case TypeDate:
			tc.Type = tuple.TDate
		case TypeChar:
			tc.Type = tuple.TChar
		default:
			return nil, fmt.Errorf("sma: column %q has unknown type %v", c.Name, c.Type)
		}
		out[i] = tc
	}
	return out, nil
}

// fromTupleType converts an internal column type to the public enum.
func fromTupleType(t tuple.Type) ColumnType {
	switch t {
	case tuple.TInt32:
		return TypeInt32
	case tuple.TInt64:
		return TypeInt64
	case tuple.TDate:
		return TypeDate
	case tuple.TChar:
		return TypeChar
	default:
		return TypeFloat64
	}
}
